// Observability counters of the deployment runtime (executor.hpp):
// everything the protocol does on the wire, aggregated across workers at
// the end of a run. Split into its own header so the experiment layer can
// embed the struct in RunResult without pulling in threads or sockets.
#pragma once

#include <cstdint>

namespace gossip::runtime {

/// Aggregated per-node transport/protocol counters of one executor run.
struct RuntimeCounters {
  std::uint64_t pushes_sent = 0;       ///< AggPush initiations
  std::uint64_t pushes_received = 0;   ///< AggPush served (incl. refusals)
  std::uint64_t replies_sent = 0;      ///< AggReply sent (incl. busy NACKs)
  std::uint64_t replies_received = 0;  ///< AggReply matched to a pending
  std::uint64_t busy_nacks = 0;        ///< refusals sent (exchange atomicity)
  std::uint64_t timeouts = 0;          ///< pendings expired without a reply
  std::uint64_t late_replies = 0;      ///< replies arriving after expiry
  std::uint64_t exchanges_completed = 0;  ///< full push–pull value merges
  std::uint64_t news_exchanges = 0;       ///< NEWSCAST cache merges on reply
  std::uint64_t dropped_loss = 0;      ///< messages the loss model ate
  std::uint64_t dropped_dead = 0;      ///< messages delivered to dead nodes
  std::uint64_t messages_sent = 0;     ///< frames handed to the transport
  std::uint64_t messages_received = 0; ///< frames fully processed
  std::uint64_t bytes_encoded = 0;     ///< proto::encode output volume
  std::uint64_t bytes_decoded = 0;     ///< proto::decode input volume

  void add(const RuntimeCounters& o) {
    pushes_sent += o.pushes_sent;
    pushes_received += o.pushes_received;
    replies_sent += o.replies_sent;
    replies_received += o.replies_received;
    busy_nacks += o.busy_nacks;
    timeouts += o.timeouts;
    late_replies += o.late_replies;
    exchanges_completed += o.exchanges_completed;
    news_exchanges += o.news_exchanges;
    dropped_loss += o.dropped_loss;
    dropped_dead += o.dropped_dead;
    messages_sent += o.messages_sent;
    messages_received += o.messages_received;
    bytes_encoded += o.bytes_encoded;
    bytes_decoded += o.bytes_decoded;
  }
};

}  // namespace gossip::runtime
