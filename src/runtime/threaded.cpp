#include "runtime/threaded.hpp"

#include <algorithm>

#include "common/stream_salt.hpp"
#include "overlay/generators.hpp"

namespace gossip::runtime {

// ---------------------------------------------------------- LocalNetwork

LocalNetwork::LocalNetwork(std::uint32_t nodes, double p_loss,
                           std::uint64_t seed)
    : rng_(seed), p_loss_(p_loss) {
  GOSSIP_REQUIRE(p_loss >= 0.0 && p_loss <= 1.0,
                 "loss must be a probability");
  boxes_.reserve(nodes);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    boxes_.push_back(std::make_unique<Mailbox<RtMessage>>());
  }
}

bool LocalNetwork::send(NodeId to, RtMessage message) {
  GOSSIP_REQUIRE(to.is_valid() && to.value() < boxes_.size(),
                 "send() to unknown node");
  if (p_loss_ > 0.0) {
    const std::lock_guard lock(rng_mutex_);
    if (rng_.chance(p_loss_)) return false;
  }
  return boxes_[to.value()]->push(std::move(message));
}

Mailbox<RtMessage>& LocalNetwork::mailbox(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < boxes_.size(),
                 "mailbox() id out of range");
  return *boxes_[id.value()];
}

void LocalNetwork::close_all() {
  for (const auto& box : boxes_) box->close();
}

// ---------------------------------------------------------- ThreadedNode

ThreadedNode::ThreadedNode(NodeId id, double initial_value,
                           std::vector<NodeId> neighbors,
                           LocalNetwork& network,
                           const ThreadedConfig& config, std::uint64_t seed)
    : id_(id),
      neighbors_(std::move(neighbors)),
      network_(&network),
      config_(config),
      rng_(seed),
      estimate_(initial_value) {
  GOSSIP_REQUIRE(!neighbors_.empty(), "a node needs at least one neighbor");
}

ThreadedNode::~ThreadedNode() { stop(); }

double ThreadedNode::estimate() const {
  const std::lock_guard lock(state_mutex_);
  return estimate_;
}

void ThreadedNode::set_initial_value(double value) {
  GOSSIP_REQUIRE(!running_, "set_initial_value() only before start()");
  const std::lock_guard lock(state_mutex_);
  estimate_ = value;
}

void ThreadedNode::start() {
  GOSSIP_REQUIRE(!running_, "node already started");
  running_ = true;
  passive_ = std::jthread(
      [this](const std::stop_token& token) { passive_loop(token); });
  active_ = std::jthread(
      [this](const std::stop_token& token) { active_loop(token); });
}

void ThreadedNode::stop() {
  if (!running_) return;
  running_ = false;
  active_.request_stop();
  passive_.request_stop();
  network_->mailbox(id_).close();
  reply_cv_.notify_all();
  if (active_.joinable()) active_.join();
  if (passive_.joinable()) passive_.join();
}

void ThreadedNode::active_loop(const std::stop_token& token) {
  std::mutex sleep_mutex;
  std::condition_variable_any sleep_cv;
  while (!token.stop_requested()) {
    {
      // Interruptible δ-sleep: wakes immediately on stop.
      std::unique_lock lock(sleep_mutex);
      sleep_cv.wait_for(lock, token, config_.cycle, [] { return false; });
    }
    if (token.stop_requested()) break;

    const NodeId peer = neighbors_[rng_.below(neighbors_.size())];
    std::uint64_t seq = 0;
    double sent = 0.0;
    {
      const std::lock_guard lock(state_mutex_);
      seq = next_seq_++;
      pending_seq_ = seq;
      pending_reply_ready_ = false;
      pending_refused_ = false;
      sent = estimate_;
    }
    network_->send(peer, Push{id_, seq, sent});
    {
      std::unique_lock lock(state_mutex_);
      const bool resolved = reply_cv_.wait_for(
          lock, token, config_.timeout,
          [this] { return pending_reply_ready_ || pending_refused_; });
      if (resolved && pending_reply_ready_) {
        // The pending lock guarantees estimate_ is still `sent`.
        estimate_ = (estimate_ + pending_reply_value_) / 2.0;
        exchanges_completed_.fetch_add(1, std::memory_order_relaxed);
      } else if (resolved && pending_refused_) {
        // peer was busy: skipped exchange
        refusals_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // §4.2: skipped exchange
        timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      pending_seq_ = 0;
      pending_reply_ready_ = false;
      pending_refused_ = false;
    }
  }
}

void ThreadedNode::passive_loop(const std::stop_token& token) {
  Mailbox<RtMessage>& box = network_->mailbox(id_);
  while (!token.stop_requested()) {
    auto message = box.pop_wait(std::chrono::milliseconds(50));
    if (!message) {
      if (box.closed()) break;
      continue;
    }
    if (const auto* push = std::get_if<Push>(&*message)) {
      serve_push(*push);
    } else if (const auto* reply = std::get_if<Reply>(&*message)) {
      apply_reply(*reply);
    } else {
      apply_busy(std::get<Busy>(*message));
    }
  }
}

void ThreadedNode::serve_push(const Push& push) {
  bool busy = false;
  double mine = 0.0;
  {
    const std::lock_guard lock(state_mutex_);
    // Exchange atomicity: refuse while our own push is in flight. The
    // explicit Busy lets the initiator skip at once instead of waiting
    // out the timeout.
    if (pending_seq_ != 0) {
      busy = true;
    } else {
      mine = estimate_;
      estimate_ = (estimate_ + push.value) / 2.0;
    }
  }
  // Sends happen outside the state lock to keep lock ordering trivial;
  // the reply carries the pre-update value (fig. 1 passive thread).
  if (busy) {
    network_->send(push.from, Busy{id_, push.seq});
  } else {
    network_->send(push.from, Reply{id_, push.seq, mine});
  }
}

void ThreadedNode::apply_busy(const Busy& busy) {
  {
    const std::lock_guard lock(state_mutex_);
    if (pending_seq_ != busy.seq) return;
    pending_refused_ = true;
  }
  reply_cv_.notify_all();
}

void ThreadedNode::apply_reply(const Reply& reply) {
  {
    const std::lock_guard lock(state_mutex_);
    if (pending_seq_ != reply.seq) return;  // late reply after timeout
    pending_reply_value_ = reply.value;
    pending_reply_ready_ = true;
  }
  reply_cv_.notify_all();
}

// --------------------------------------------------------------- Cluster

Cluster::Cluster(std::uint32_t nodes, std::uint32_t degree,
                 const ThreadedConfig& config, std::uint64_t seed)
    : network_(nodes, config.p_loss, seed ^ salt::kThreadedLossNet) {
  GOSSIP_REQUIRE(nodes >= 2, "cluster needs at least two nodes");
  Rng rng(seed);
  const overlay::Graph graph = overlay::random_k_out(nodes, degree, rng);
  nodes_.reserve(nodes);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    const auto ns = graph.neighbors(NodeId(u));
    nodes_.push_back(std::make_unique<ThreadedNode>(
        NodeId(u), 0.0, std::vector<NodeId>(ns.begin(), ns.end()), network_,
        config, rng()));
  }
}

void Cluster::set_value(NodeId id, double value) {
  GOSSIP_REQUIRE(!started_, "set_value() only before start()");
  GOSSIP_REQUIRE(id.is_valid() && id.value() < nodes_.size(),
                 "set_value() id out of range");
  nodes_[id.value()]->set_initial_value(value);
}

void Cluster::start() {
  GOSSIP_REQUIRE(!started_, "cluster already started");
  started_ = true;
  for (const auto& node : nodes_) node->start();
}

void Cluster::stop() {
  if (!started_) return;
  network_.close_all();
  for (const auto& node : nodes_) node->stop();
  started_ = false;
}

const ThreadedNode& Cluster::node(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < nodes_.size(),
                 "node() id out of range");
  return *nodes_[id.value()];
}

std::vector<double> Cluster::estimates() const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->estimate());
  return out;
}

}  // namespace gossip::runtime
