#include "runtime/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "common/require.hpp"

namespace gossip::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// Wire frame header between processes (little-endian):
// [u32 payload_len][u32 src][u32 dst][u8 type] payload…
// type 0 carries proto wire bytes between nodes; type 1 is the cycle-done
// control frame (src = sender's process index, dst = the finished cycle,
// empty payload).
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 1;
constexpr std::uint8_t kFrameData = 0;
constexpr std::uint8_t kFrameCycleDone = 1;

// Payloads are single protocol messages; anything bigger than this is a
// corrupt length prefix, not a legal frame.
constexpr std::uint32_t kMaxPayload = 1 << 20;

void put_u32(std::byte* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

// gossip-lint: allow(unchecked-wire-read): definition site — every call
// sits inside the parse loop's kHeaderSize/len guards (receive_loop).
std::uint32_t get_u32(const std::byte* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------- base

Transport::Transport(FaultConfig faults)
    : faults_(std::move(faults)), fault_rng_(faults_.seed) {}

bool Transport::fault_drop(Clock::time_point& deliver_at) {
  deliver_at = Clock::now();
  if (faults_.p_loss <= 0.0 && faults_.latency == nullptr) return false;
  const std::lock_guard lock(fault_mutex_);
  if (faults_.p_loss > 0.0 && fault_rng_.chance(faults_.p_loss)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (faults_.latency != nullptr) {
    deliver_at += std::chrono::microseconds(faults_.latency->sample(fault_rng_));
  }
  return false;
}

// ------------------------------------------------------------ loopback

LoopbackTransport::LoopbackTransport(FaultConfig faults)
    : Transport(std::move(faults)) {}

bool LoopbackTransport::send(NodeId src, NodeId dst,
                             std::vector<std::byte> payload) {
  Clock::time_point deliver_at;
  if (fault_drop(deliver_at)) return false;
  deliver(Frame{src, dst, std::move(payload), deliver_at});
  return true;
}

// ----------------------------------------------------------- partition

std::uint32_t ProcessPartition::lo(std::uint32_t p) const {
  const std::uint32_t base = nodes / processes;
  const std::uint32_t rem = nodes % processes;
  return p * base + std::min(p, rem);
}

std::uint32_t ProcessPartition::owner(std::uint32_t id) const {
  GOSSIP_REQUIRE(id < nodes, "node id outside the partitioned id space");
  const std::uint32_t base = nodes / processes;
  const std::uint32_t rem = nodes % processes;
  const std::uint32_t wide = rem * (base + 1);  // ids held by the p < rem ranges
  if (id < wide) return id / (base + 1);
  return rem + (id - wide) / base;
}

// -------------------------------------------------------------- socket

SocketTransport::SocketTransport(FaultConfig faults, SocketConfig config)
    : Transport(std::move(faults)),
      config_(config),
      partition_{config.nodes, config.processes},
      out_fds_(config.processes, -1),
      peer_done_(config.processes) {
  GOSSIP_REQUIRE(config_.processes >= 2,
                 "socket transport needs >= 2 processes (use loopback)");
  GOSSIP_REQUIRE(config_.process_index < config_.processes,
                 "process_index out of range");
  GOSSIP_REQUIRE(config_.port_base >= 1024, "port_base must be >= 1024");
  for (auto& done : peer_done_) done.store(-1, std::memory_order_relaxed);
  for (std::uint32_t p = 0; p < config_.processes; ++p) {
    out_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GOSSIP_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(config_.port_base + config_.process_index));
  GOSSIP_REQUIRE(
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) == 0,
      "bind() failed — is another runtime process using this port_base?");
  GOSSIP_REQUIRE(::listen(listen_fd_, static_cast<int>(config_.processes)) == 0,
                 "listen() failed");
}

SocketTransport::~SocketTransport() { shutdown(); }

void SocketTransport::start() {
  if (started_) return;
  started_ = true;

  // Connect to every peer, retrying while they come up; our own listener
  // is already bound, so a fleet of processes started in any order meets
  // in the middle.
  const auto deadline = Clock::now() + config_.connect_timeout;
  for (std::uint32_t p = 0; p < config_.processes; ++p) {
    if (p == config_.process_index) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port_base + p));
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      GOSSIP_REQUIRE(fd >= 0, "socket() failed");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      ::close(fd);
      fd = -1;
      GOSSIP_REQUIRE(Clock::now() < deadline,
                     "timed out connecting to a peer runtime process");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    out_fds_[p] = fd;
  }

  receiver_ = std::thread([this] { receive_loop(); });
}

bool SocketTransport::is_local(NodeId id) const {
  return partition_.owner(id.value()) == config_.process_index;
}

bool SocketTransport::send(NodeId src, NodeId dst,
                           std::vector<std::byte> payload) {
  if (is_local(dst)) {
    Clock::time_point deliver_at;
    if (fault_drop(deliver_at)) return false;
    deliver(Frame{src, dst, std::move(payload), deliver_at});
    return true;
  }
  // Remote: faults are injected on the receiving side (one application
  // per message, like the local path); TCP itself never drops.
  const std::uint32_t peer = partition_.owner(dst.value());
  std::vector<std::byte> frame(kHeaderSize + payload.size());
  put_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32(frame.data() + 4, src.value());
  put_u32(frame.data() + 8, dst.value());
  frame[12] = static_cast<std::byte>(kFrameData);
  std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  write_all(peer, frame.data(), frame.size());
  return true;
}

void SocketTransport::announce_cycle_done(std::uint32_t cycle) {
  std::byte frame[kHeaderSize];
  put_u32(frame, 0);
  put_u32(frame + 4, config_.process_index);
  put_u32(frame + 8, cycle);
  frame[12] = static_cast<std::byte>(kFrameCycleDone);
  for (std::uint32_t p = 0; p < config_.processes; ++p) {
    if (p != config_.process_index) write_all(p, frame, sizeof(frame));
  }
}

bool SocketTransport::peers_done(std::uint32_t cycle) {
  for (std::uint32_t p = 0; p < config_.processes; ++p) {
    if (p == config_.process_index) continue;
    if (peer_done_[p].load(std::memory_order_acquire) <
        static_cast<std::int64_t>(cycle)) {
      return false;
    }
  }
  return true;
}

void SocketTransport::write_all(std::uint32_t peer, const std::byte* data,
                                std::size_t len) {
  const std::lock_guard lock(*out_mutexes_[peer]);
  const int fd = out_fds_[peer];
  GOSSIP_REQUIRE(fd >= 0, "send to a peer process before start()");
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    GOSSIP_REQUIRE(n > 0, "peer runtime process connection broke mid-write");
    off += static_cast<std::size_t>(n);
  }
}

void SocketTransport::handle_frame(std::uint32_t src, std::uint32_t dst,
                                   std::uint8_t type,
                                   std::vector<std::byte> payload) {
  if (type == kFrameCycleDone) {
    GOSSIP_REQUIRE(src < config_.processes,
                   "cycle-done frame from an unknown process index");
    // dst carries the finished cycle. Peers only move forward.
    std::int64_t prev = peer_done_[src].load(std::memory_order_relaxed);
    const auto cycle = static_cast<std::int64_t>(dst);
    while (prev < cycle && !peer_done_[src].compare_exchange_weak(
                               prev, cycle, std::memory_order_release)) {
    }
    return;
  }
  GOSSIP_REQUIRE(type == kFrameData, "unknown inter-process frame type");
  Clock::time_point deliver_at;
  if (fault_drop(deliver_at)) return;
  deliver(Frame{NodeId(src), NodeId(dst), std::move(payload), deliver_at});
}

void SocketTransport::receive_loop() {
  std::vector<std::byte> chunk(64 * 1024);
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    const bool accepting = in_.size() + 1 < config_.processes;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    for (const PeerIn& peer : in_) fds.push_back({peer.fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    if (ready <= 0) continue;

    std::size_t fi = 0;
    if (accepting) {
      if ((fds[fi].revents & POLLIN) != 0) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          in_.push_back(PeerIn{fd, {}});
        }
      }
      ++fi;
    }
    for (std::size_t i = 0; i < in_.size() && fi + i < fds.size(); ++i) {
      if ((fds[fi + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      PeerIn& peer = in_[i];
      const ssize_t n = ::recv(peer.fd, chunk.data(), chunk.size(), 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
      }
      if (n <= 0) {
        // Peer closed: it finished (or died — its missing results fail
        // the orchestration, not this process's barrier).
        ::close(peer.fd);
        peer.fd = -1;
        for (auto& done : peer_done_) {
          done.store(std::numeric_limits<std::int64_t>::max(),
                     std::memory_order_release);
        }
        in_.erase(in_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      peer.buffer.insert(peer.buffer.end(), chunk.begin(), chunk.begin() + n);
      // Parse every complete frame in the reassembly buffer.
      std::size_t off = 0;
      while (peer.buffer.size() - off >= kHeaderSize) {
        const std::uint32_t len = get_u32(peer.buffer.data() + off);
        GOSSIP_REQUIRE(len <= kMaxPayload,
                       "inter-process frame length prefix is corrupt");
        if (peer.buffer.size() - off < kHeaderSize + len) break;
        const std::uint32_t src = get_u32(peer.buffer.data() + off + 4);
        const std::uint32_t dst = get_u32(peer.buffer.data() + off + 8);
        const auto type = std::to_integer<std::uint8_t>(peer.buffer[off + 12]);
        std::vector<std::byte> payload(
            peer.buffer.begin() + static_cast<std::ptrdiff_t>(off + kHeaderSize),
            peer.buffer.begin() +
                static_cast<std::ptrdiff_t>(off + kHeaderSize + len));
        handle_frame(src, dst, type, std::move(payload));
        off += kHeaderSize + len;
      }
      peer.buffer.erase(peer.buffer.begin(),
                        peer.buffer.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }
}

void SocketTransport::shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  if (receiver_.joinable()) receiver_.join();
  for (int& fd : out_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (PeerIn& peer : in_) {
    if (peer.fd >= 0) ::close(peer.fd);
    peer.fd = -1;
  }
  in_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace gossip::runtime
