#include "runtime/executor.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "common/require.hpp"
#include "common/stream_salt.hpp"
#include "proto/wire.hpp"

namespace gossip::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// Frames ordered latest-deadline-first, so std::push_heap/pop_heap over
/// this predicate keep the earliest deliverable frame at the front.
bool later(const Frame& a, const Frame& b) {
  return a.deliver_at > b.deliver_at;
}

ExecutorConfig normalized(ExecutorConfig c) {
  GOSSIP_REQUIRE(c.nodes >= 2, "executor needs at least two nodes");
  GOSSIP_REQUIRE(c.local_lo < c.local_hi && c.local_hi <= c.nodes,
                 "executor local range must be a nonempty slice of [0, N)");
  GOSSIP_REQUIRE(c.initial.size() == c.nodes,
                 "executor needs one initial value per global node");
  GOSSIP_REQUIRE(c.cycles >= 1, "executor needs at least one cycle");
  if (c.overlay == OverlayMode::kStatic) {
    GOSSIP_REQUIRE(c.graph != nullptr && c.graph->node_count() == c.nodes,
                   "static overlay mode needs a graph over all N nodes");
  }
  GOSSIP_REQUIRE(c.cache_size >= 1, "newscast cache needs capacity >= 1");
  const std::uint32_t local = c.local_hi - c.local_lo;
  c.workers = std::clamp<std::uint32_t>(c.workers, 1, local);
  c.wheel_slots = std::max<std::uint32_t>(c.wheel_slots, 1);
  return c;
}

/// Decrements the global in-flight counter when frame processing ends,
/// exception or not — the quiescence proof needs every counted frame
/// released exactly once.
class InFlightRelease {
public:
  explicit InFlightRelease(std::atomic<std::int64_t>& counter)
      : counter_(counter) {}
  ~InFlightRelease() { counter_.fetch_sub(1, std::memory_order_acq_rel); }
  InFlightRelease(const InFlightRelease&) = delete;
  InFlightRelease& operator=(const InFlightRelease&) = delete;

private:
  std::atomic<std::int64_t>& counter_;
};

}  // namespace

Executor::Executor(ExecutorConfig config, Transport& transport)
    : config_(normalized(std::move(config))),
      transport_(transport),
      sync_(static_cast<std::ptrdiff_t>(config_.workers) + 1),
      driver_rng_(config_.seed ^ salt::kRuntimeDriver) {
  const std::uint32_t local = config_.local_hi - config_.local_lo;
  const std::size_t capacity = std::size_t{local} + config_.max_joins;
  estimates_.reserve(capacity);
  values_.reserve(capacity);
  alive_.reserve(capacity);
  participant_.reserve(capacity);
  pending_req_.reserve(capacity);
  pending_peer_.reserve(capacity);
  if (config_.overlay == OverlayMode::kNewscast) caches_.reserve(capacity);

  workers_.reserve(config_.workers);
  Rng worker_seeds(config_.seed ^ salt::kRuntimeWorkerPool);
  for (std::uint32_t i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->wheel.resize(config_.wheel_slots);
    w->rng = worker_seeds.split();
    workers_.push_back(std::move(w));
  }

  for (std::uint32_t slot = 0; slot < local; ++slot) {
    add_node(config_.initial[config_.local_lo + slot], /*participant=*/true,
             /*bootstrap_ts=*/0);
  }

  transport_.set_sink([this](Frame&& frame) { sink(std::move(frame)); });
}

Executor::~Executor() = default;

std::uint32_t Executor::slot_of(NodeId id) const {
  const std::uint32_t raw = id.value();
  if (raw >= config_.local_lo && raw < config_.local_hi) {
    return raw - config_.local_lo;
  }
  // Ids past the initial space are locally-joined churn identities.
  const std::uint32_t local = config_.local_hi - config_.local_lo;
  GOSSIP_REQUIRE(raw >= config_.nodes, "frame addressed to a remote node");
  const std::uint32_t slot = local + (raw - config_.nodes);
  GOSSIP_REQUIRE(slot < alive_.size(), "frame addressed to an unknown node");
  return slot;
}

std::uint32_t Executor::global_of(std::uint32_t slot) const {
  const std::uint32_t local = config_.local_hi - config_.local_lo;
  if (slot < local) return config_.local_lo + slot;
  return config_.nodes + (slot - local);
}

void Executor::sink(Frame&& frame) {
  const std::uint32_t raw = frame.dst.value();
  std::uint32_t slot;
  const std::uint32_t local = config_.local_hi - config_.local_lo;
  if (raw >= config_.local_lo && raw < config_.local_hi) {
    slot = raw - config_.local_lo;
  } else if (raw >= config_.nodes && raw - config_.nodes < alive_.size() - local) {
    slot = local + (raw - config_.nodes);
  } else {
    return;  // stale or corrupt destination — not ours, drop silently
  }
  Worker& w = *workers_[slot % config_.workers];
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  std::scoped_lock lock(w.mutex);
  w.ingress.push_back(std::move(frame));
}

ExecutorResult Executor::run(const failure::FailurePlan& plan) {
  transport_.start();
  const auto t0 = Clock::now();

  record_stats();
  long double sum_initial = 0.0L;
  for (std::size_t slot = 0; slot < estimates_.size(); ++slot) {
    if (alive_[slot] && participant_[slot]) sum_initial += estimates_[slot];
  }

  apply_failures(0, plan);
  apply_drift(0);
  cycle_ = 0;
  resolved_.store(0, std::memory_order_relaxed);
  cycle_start_ = Clock::now();

  std::vector<std::thread> threads;
  threads.reserve(config_.workers);
  for (std::uint32_t i = 0; i < config_.workers; ++i) {
    threads.emplace_back([this, i] { worker_main(i); });
  }

  for (std::uint32_t c = 0; c < config_.cycles; ++c) {
    sync_.arrive_and_wait();  // cycle c's exchanges all settled
    try {
      record_stats();
      if (c + 1 < config_.cycles) {
        apply_failures(c + 1, plan);
        apply_drift(c + 1);
        resolved_.store(0, std::memory_order_relaxed);
        cycle_ = c + 1;
        cycle_start_ = Clock::now();
      }
    } catch (const std::exception& e) {
      fail(e.what());
    }
    sync_.arrive_and_wait();  // cycle c+1 state published
  }
  sync_.arrive_and_wait();  // multi-process straggler grace done
  for (auto& t : threads) t.join();
  transport_.shutdown();

  if (failed_.load(std::memory_order_acquire)) {
    std::scoped_lock lock(fail_mutex_);
    throw require_error("executor run failed: " + fail_message_);
  }

  ExecutorResult result;
  result.per_cycle = std::move(per_cycle_);
  result.tracking_error = std::move(tracking_error_);
  long double sum_final = 0.0L;
  for (std::size_t slot = 0; slot < estimates_.size(); ++slot) {
    if (!alive_[slot] || !participant_[slot]) continue;
    result.final_estimates.push_back(estimates_[slot]);
    sum_final += estimates_[slot];
    ++result.participants;
  }
  result.sum_initial = static_cast<double>(sum_initial);
  result.sum_final = static_cast<double>(sum_final);
  for (const auto& w : workers_) result.counters.add(w->counters);
  result.counters.dropped_loss = transport_.drops();
  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

void Executor::worker_main(std::uint32_t index) {
  Worker& w = *workers_[index];
  for (std::uint32_t c = 0; c < config_.cycles; ++c) {
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        run_cycle(w, c);
      } catch (const std::exception& e) {
        fail(e.what());
      }
    }
    sync_.arrive_and_wait();
    sync_.arrive_and_wait();
  }
  if (!failed_.load(std::memory_order_relaxed) && !single_process()) {
    // Serve remote stragglers: a peer process may still be resolving its
    // last cycle and waiting on replies from nodes hosted here.
    const auto until = Clock::now() + std::chrono::milliseconds(200);
    while (Clock::now() < until) {
      if (!drain(w)) std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  sync_.arrive_and_wait();
}

void Executor::run_cycle(Worker& w, std::uint32_t cycle) {
  const auto slot_len =
      config_.delta_us > 0
          ? std::chrono::microseconds(config_.delta_us / config_.wheel_slots)
          : std::chrono::microseconds(0);
  for (std::uint32_t s = 0; s < config_.wheel_slots; ++s) {
    if (slot_len.count() > 0) {
      std::this_thread::sleep_until(cycle_start_ + s * slot_len);
    }
    for (std::uint32_t u : w.wheel[s]) {
      if (!alive_[u]) continue;
      if (config_.overlay == OverlayMode::kNewscast) initiate_newscast(w, u);
      if (participant_[u]) initiate_aggregation(w, u);
    }
    drain(w);
    if (failed_.load(std::memory_order_relaxed)) return;
  }

  const auto deadline = cycle_start_ +
                        std::chrono::microseconds(config_.delta_us) +
                        config_.cycle_timeout;

  // Resolution, local half: every pending on a local peer either gets its
  // reply or is proven lost (in_flight == 0 means no local frame exists,
  // so no local reply can ever arrive).
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const bool any = drain(w);
    if (!has_pending(w, /*local_only=*/true)) break;
    if (in_flight_.load(std::memory_order_acquire) == 0 ||
        Clock::now() >= deadline) {
      expire_pendings(w, /*local_only=*/true);
      break;
    }
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // Resolution, remote half: announce once all local workers settled,
  // then keep serving until every peer announced and this worker's own
  // pendings resolved. Remote pendings ride reliable TCP — they resolve
  // when the peer serves them (possibly from its own resolution loop) and
  // expire only on the wall deadline.
  //
  // The global in_flight == 0 requirement applies in single-process mode
  // only. There it is safe (once every worker is past phase 1 no new
  // frame can be created, so the count drains to zero) and it guarantees
  // every mailbox is empty at the barrier. In multi-process mode it would
  // deadlock: a peer that already closed this cycle can push into the
  // mailbox of a worker that has already reached the barrier, and nobody
  // can drain that count until the barrier releases — so cross-process
  // stragglers are instead served by the next cycle's drain (and by the
  // end-of-run grace loop), which the protocol tolerates by design.
  if (resolved_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      config_.workers) {
    transport_.announce_cycle_done(cycle);
  }
  const bool quiesce = single_process();
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const bool any = drain(w);
    if (!has_pending(w, /*local_only=*/false)) {
      if (resolved_.load(std::memory_order_acquire) == config_.workers &&
          transport_.peers_done(cycle) &&
          (!quiesce ||
           in_flight_.load(std::memory_order_acquire) == 0)) {
        break;
      }
    } else if (Clock::now() >= deadline) {
      expire_pendings(w, /*local_only=*/false);
    }
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

bool Executor::drain(Worker& w) {
  {
    std::scoped_lock lock(w.mutex);
    w.grab.swap(w.ingress);
  }
  bool processed = false;
  const auto now = Clock::now();
  for (auto& frame : w.grab) {
    if (frame.deliver_at > now) {
      w.held.push_back(std::move(frame));
      std::push_heap(w.held.begin(), w.held.end(), later);
    } else {
      process(w, std::move(frame));
      processed = true;
    }
  }
  w.grab.clear();
  while (!w.held.empty() && w.held.front().deliver_at <= Clock::now()) {
    std::pop_heap(w.held.begin(), w.held.end(), later);
    Frame frame = std::move(w.held.back());
    w.held.pop_back();
    process(w, std::move(frame));
    processed = true;
  }
  return processed;
}

void Executor::process(Worker& w, Frame&& frame) {
  InFlightRelease release(in_flight_);
  w.counters.messages_received++;
  w.counters.bytes_decoded += frame.payload.size();
  const proto::Message message = proto::decode(frame.payload);
  const std::uint32_t d = slot_of(frame.dst);

  if (const auto* push = std::get_if<proto::AggPush>(&message)) {
    w.counters.pushes_received++;
    if (!alive_[d]) {
      w.counters.dropped_dead++;
    } else if (!participant_[d] || pending_req_[d] != 0) {
      // Exchange atomicity (and joiners sitting out the epoch): refuse.
      w.counters.busy_nacks++;
      w.counters.replies_sent++;
      send_message(w, d, frame.src,
                   proto::AggReply{0, push->request_id, 0.0, true});
    } else {
      const double mine = estimates_[d];
      w.counters.replies_sent++;
      send_message(w, d, frame.src,
                   proto::AggReply{0, push->request_id, mine, false});
      estimates_[d] = 0.5 * (mine + push->value);
    }
  } else if (const auto* reply = std::get_if<proto::AggReply>(&message)) {
    if (!alive_[d]) {
      w.counters.dropped_dead++;
    } else if (pending_req_[d] != 0 && pending_req_[d] == reply->request_id) {
      pending_req_[d] = 0;
      pending_peer_[d] = NodeId::invalid().value();
      w.counters.replies_received++;
      if (!reply->refused) {
        estimates_[d] = 0.5 * (estimates_[d] + reply->value);
        w.counters.exchanges_completed++;
      }
    } else {
      w.counters.late_replies++;
    }
  } else if (const auto* news = std::get_if<proto::NewsPush>(&message)) {
    if (!alive_[d]) {
      w.counters.dropped_dead++;
    } else {
      proto::NewsReply answer;
      const auto mine = caches_[d].entries();
      answer.entries.assign(mine.begin(), mine.end());
      answer.fresh = membership::CacheEntry(frame.dst, cycle_ + 1);
      send_message(w, d, frame.src, answer);
      caches_[d].merge(news->entries, news->fresh, frame.dst);
    }
  } else if (const auto* answer = std::get_if<proto::NewsReply>(&message)) {
    if (!alive_[d]) {
      w.counters.dropped_dead++;
    } else {
      caches_[d].merge(answer->entries, answer->fresh, frame.dst);
      w.counters.news_exchanges++;
    }
  }
}

void Executor::send_message(Worker& w, std::uint32_t from_slot, NodeId to,
                            const proto::Message& message) {
  auto bytes = proto::encode(message);
  w.counters.messages_sent++;
  w.counters.bytes_encoded += bytes.size();
  // A false return means the loss model ate it; the transport counts the
  // drop, and the pending (if any) resolves through quiescence/timeout.
  (void)transport_.send(NodeId(global_of(from_slot)), to, std::move(bytes));
}

void Executor::initiate_aggregation(Worker& w, std::uint32_t slot) {
  const NodeId peer = pick_peer(w, slot);
  if (!peer.is_valid() || peer.value() == global_of(slot)) return;
  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(global_of(slot)) << 32) | (cycle_ + 1);
  pending_req_[slot] = request_id;
  pending_peer_[slot] = peer.value();
  w.counters.pushes_sent++;
  send_message(w, slot, peer, proto::AggPush{0, request_id, estimates_[slot]});
}

void Executor::initiate_newscast(Worker& w, std::uint32_t slot) {
  if (caches_[slot].empty()) return;
  const NodeId peer = caches_[slot].sample(w.rng);
  if (!peer.is_valid() || peer.value() == global_of(slot)) return;
  proto::NewsPush push;
  const auto mine = caches_[slot].entries();
  push.entries.assign(mine.begin(), mine.end());
  push.fresh =
      membership::CacheEntry(NodeId(global_of(slot)), cycle_ + 1);
  send_message(w, slot, peer, push);
}

NodeId Executor::pick_peer(Worker& w, std::uint32_t slot) {
  switch (config_.overlay) {
    case OverlayMode::kComplete: {
      const std::uint32_t self = global_of(slot);
      if (self >= config_.nodes) {
        return NodeId(static_cast<std::uint32_t>(
            w.rng.below(config_.nodes)));
      }
      auto pick =
          static_cast<std::uint32_t>(w.rng.below(config_.nodes - 1));
      if (pick >= self) ++pick;
      return NodeId(pick);
    }
    case OverlayMode::kStatic: {
      const auto neighbors =
          config_.graph->neighbors(NodeId(global_of(slot)));
      if (neighbors.empty()) return NodeId::invalid();
      return neighbors[w.rng.below(neighbors.size())];
    }
    case OverlayMode::kNewscast:
      return caches_[slot].sample(w.rng);
  }
  return NodeId::invalid();
}

void Executor::expire_pendings(Worker& w, bool local_only) {
  for (std::uint32_t u : w.own) {
    if (pending_req_[u] == 0) continue;
    if (local_only && !transport_.is_local(NodeId(pending_peer_[u]))) continue;
    pending_req_[u] = 0;
    pending_peer_[u] = NodeId::invalid().value();
    w.counters.timeouts++;
  }
}

bool Executor::has_pending(const Worker& w, bool local_only) const {
  for (std::uint32_t u : w.own) {
    if (pending_req_[u] == 0) continue;
    if (local_only && !transport_.is_local(NodeId(pending_peer_[u]))) continue;
    return true;
  }
  return false;
}

void Executor::fail(const std::string& message) {
  bool expected = false;
  if (failed_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    std::scoped_lock lock(fail_mutex_);
    fail_message_ = message;
  }
}

void Executor::apply_failures(std::uint32_t cycle,
                              const failure::FailurePlan& plan) {
  std::uint32_t live = 0;
  for (const char a : alive_) live += a != 0;
  const failure::CycleEvent event = plan.before_cycle(cycle, live);
  GOSSIP_REQUIRE(!event.restart,
                 "epoch restarts are not supported on the runtime path");

  if (event.kill_hi > event.kill_lo) {
    for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
      if (!alive_[slot]) continue;
      const std::uint32_t id = global_of(static_cast<std::uint32_t>(slot));
      if (id >= event.kill_lo && id < event.kill_hi) {
        alive_[slot] = 0;
        --live;
      }
    }
  }

  const std::uint32_t kills =
      std::min(event.kills, live > 0 ? live - 1 : 0);
  if (kills > 0) {
    std::vector<std::uint32_t> candidates;
    candidates.reserve(live);
    for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
      if (alive_[slot]) candidates.push_back(static_cast<std::uint32_t>(slot));
    }
    for (const std::uint64_t i :
         driver_rng_.sample_distinct(candidates.size(), kills)) {
      alive_[candidates[i]] = 0;
    }
  }

  for (std::uint32_t j = 0; j < event.joins; ++j) {
    add_node(0.0, /*participant=*/false, /*bootstrap_ts=*/cycle);
  }
}

void Executor::apply_drift(std::uint32_t cycle) {
  if (!config_.drift) return;
  for (std::size_t slot = 0; slot < values_.size(); ++slot) {
    if (!alive_[slot]) continue;
    const double delta =
        config_.drift(cycle, global_of(static_cast<std::uint32_t>(slot)));
    values_[slot] += delta;
    if (participant_[slot]) estimates_[slot] += delta;
  }
}

void Executor::record_stats() {
  stats::RunningStats estimate_stats;
  stats::RunningStats value_stats;
  for (std::size_t slot = 0; slot < estimates_.size(); ++slot) {
    if (!alive_[slot] || !participant_[slot]) continue;
    estimate_stats.add(estimates_[slot]);
    value_stats.add(values_[slot]);
  }
  per_cycle_.push_back(estimate_stats);
  if (config_.drift) {
    tracking_error_.push_back(
        std::fabs(estimate_stats.mean() - value_stats.mean()));
  }
}

void Executor::add_node(double value, bool participant,
                        std::uint32_t bootstrap_ts) {
  const auto slot = static_cast<std::uint32_t>(estimates_.size());
  estimates_.push_back(value);
  values_.push_back(value);
  alive_.push_back(1);
  participant_.push_back(participant ? 1 : 0);
  pending_req_.push_back(0);
  pending_peer_.push_back(NodeId::invalid().value());
  if (config_.overlay == OverlayMode::kNewscast) {
    caches_.emplace_back(config_.cache_size);
    // Bootstrap with a few random peers so the node can gossip at once.
    // Initial nodes point anywhere in the global id space; churn joiners
    // (bootstrap_ts > 0) must name live local nodes, so draw from slots.
    const std::uint32_t fanout =
        std::min<std::uint32_t>(config_.cache_size, 8);
    const std::uint32_t self = global_of(slot);
    for (std::uint32_t i = 0; i < fanout; ++i) {
      std::uint32_t peer;
      if (bootstrap_ts == 0) {
        peer = static_cast<std::uint32_t>(driver_rng_.below(config_.nodes));
      } else {
        const auto other =
            static_cast<std::uint32_t>(driver_rng_.below(slot));
        if (!alive_[other]) continue;
        peer = global_of(other);
      }
      if (peer == self) continue;
      caches_.back().insert(
          membership::CacheEntry(NodeId(peer), bootstrap_ts));
    }
  }
  Worker& w = *workers_[slot % config_.workers];
  w.own.push_back(slot);
  w.wheel[(slot * 2654435761u) % config_.wheel_slots].push_back(slot);
}

}  // namespace gossip::runtime
