// A blocking MPSC mailbox for the real-thread runtime: producers are any
// node's active thread, the consumer is the owner's receiver thread.
// close() releases all waiters — the shutdown path of every node.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gossip::runtime {

template <typename T>
class Mailbox {
public:
  /// Enqueues unless closed. Returns false if the box is closed.
  bool push(T item) {
    {
      const std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives, the timeout passes, or the box is
  /// closed. Empty optional on timeout/close.
  std::optional<T> pop_wait(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    ready_.wait_for(lock, timeout,
                    [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    const std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the box: pending items remain poppable, pushes fail, waiting
  /// consumers wake.
  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard lock(mutex_);
    return closed_;
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gossip::runtime
