// Transport abstraction of the deployment runtime: encoded proto wire
// bytes move between nodes through one of two implementations —
//
//  * LoopbackTransport: in-process delivery through the same mailbox
//    machinery the thread-per-node runtime uses, for N=10³–10⁴ nodes in
//    one process;
//  * SocketTransport: real TCP over loopback between K processes hosting
//    disjoint node-id ranges, length-prefixed frames, plus a cycle-done
//    control channel so cooperating processes can close each δ cycle
//    together.
//
// Both implementations inject per-message faults before delivery: a
// Bernoulli loss draw and a one-way delay drawn from net/latency.hpp's
// models (the delayed frame is held by the receiving worker until its
// deadline). Messages are opaque byte payloads here — encoding/decoding
// stays in the executor so byte counters measure real wire volume on the
// loopback path too.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "net/latency.hpp"

namespace gossip::runtime {

/// One delivered message: proto wire bytes plus addressing and the
/// injected-delay deadline the receiving worker honours.
struct Frame {
  NodeId src;
  NodeId dst;
  std::vector<std::byte> payload;
  std::chrono::steady_clock::time_point deliver_at;
};

/// Shared fault-injection knobs. `latency` null means no injected delay.
struct FaultConfig {
  double p_loss = 0.0;
  std::shared_ptr<net::LatencyModel> latency;  ///< sample() in microseconds
  std::uint64_t seed = 1;
};

/// Where delivered frames land. The executor registers one sink that
/// routes to the destination node's worker; the transport may call it
/// from any sending worker thread or from its own receiver thread.
using FrameSink = std::function<void(Frame&&)>;

class Transport {
public:
  explicit Transport(FaultConfig faults);
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Wires the delivery sink; must be called (followed by start())
  /// before any send.
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }

  /// Brings the transport up (socket accept/connect happens here).
  virtual void start() {}

  /// Delivers `payload` from src to dst, applying loss and delay.
  /// Returns false when the loss model dropped the message. Thread-safe.
  virtual bool send(NodeId src, NodeId dst,
                    std::vector<std::byte> payload) = 0;

  /// True when `id` is hosted by this process.
  [[nodiscard]] virtual bool is_local(NodeId id) const = 0;

  /// Cross-process cycle barrier: announce this process finished `cycle`,
  /// and poll whether every peer has. Single-process transports are
  /// always done.
  virtual void announce_cycle_done(std::uint32_t cycle) { (void)cycle; }
  [[nodiscard]] virtual bool peers_done(std::uint32_t cycle) {
    (void)cycle;
    return true;
  }

  /// Tears the transport down; idempotent.
  virtual void shutdown() {}

  [[nodiscard]] std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }

protected:
  /// Applies the fault model: true → message dropped (counted). When not
  /// dropped, `deliver_at` is now + the sampled one-way delay.
  bool fault_drop(std::chrono::steady_clock::time_point& deliver_at);

  /// Hands a surviving frame to the executor's sink.
  void deliver(Frame&& frame) { sink_(std::move(frame)); }

private:
  FrameSink sink_;
  FaultConfig faults_;
  std::mutex fault_mutex_;
  Rng fault_rng_;
  std::atomic<std::uint64_t> drops_{0};
};

/// In-process transport: every node is local, frames go straight to the
/// sink. This is the mailbox path of the thread-per-node runtime promoted
/// behind the Transport interface.
class LoopbackTransport final : public Transport {
public:
  explicit LoopbackTransport(FaultConfig faults = {});

  bool send(NodeId src, NodeId dst, std::vector<std::byte> payload) override;
  [[nodiscard]] bool is_local(NodeId) const override { return true; }
};

/// Static placement of the global id space over K processes: near-equal
/// contiguous ranges, process p owning [lo(p), hi(p)).
struct ProcessPartition {
  std::uint32_t nodes = 0;
  std::uint32_t processes = 1;

  [[nodiscard]] std::uint32_t lo(std::uint32_t p) const;
  [[nodiscard]] std::uint32_t hi(std::uint32_t p) const { return lo(p + 1); }
  [[nodiscard]] std::uint32_t owner(std::uint32_t id) const;
};

struct SocketConfig {
  std::uint32_t nodes = 0;          ///< global N
  std::uint32_t processes = 2;      ///< cooperating process count K
  std::uint32_t process_index = 0;  ///< this process's shard in [0, K)
  std::uint16_t port_base = 0;      ///< process p listens on port_base + p
  std::chrono::milliseconds connect_timeout{15000};
};

/// TCP-over-loopback transport between K processes. Frames between local
/// nodes short-circuit through the sink (fault-injected like everything
/// else); frames to remote nodes are written length-prefixed to the peer
/// connection and fault-injected on the receiving side. TCP keeps
/// delivery reliable, so "zero induced loss ⇒ exact conservation" holds
/// across processes too.
class SocketTransport final : public Transport {
public:
  SocketTransport(FaultConfig faults, SocketConfig config);
  ~SocketTransport() override;

  void start() override;
  bool send(NodeId src, NodeId dst, std::vector<std::byte> payload) override;
  [[nodiscard]] bool is_local(NodeId id) const override;
  void announce_cycle_done(std::uint32_t cycle) override;
  [[nodiscard]] bool peers_done(std::uint32_t cycle) override;
  void shutdown() override;

private:
  struct PeerIn {
    int fd = -1;
    std::vector<std::byte> buffer;  ///< partial-frame reassembly
  };

  void receive_loop();
  void handle_frame(std::uint32_t src, std::uint32_t dst, std::uint8_t type,
                    std::vector<std::byte> payload);
  void write_all(std::uint32_t peer, const std::byte* data, std::size_t len);

  SocketConfig config_;
  ProcessPartition partition_;
  int listen_fd_ = -1;
  std::vector<int> out_fds_;                  ///< indexed by peer process
  std::vector<std::unique_ptr<std::mutex>> out_mutexes_;
  std::vector<PeerIn> in_;                    ///< accepted connections
  std::vector<std::atomic<std::int64_t>> peer_done_;  ///< last announced cycle
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread receiver_;
};

}  // namespace gossip::runtime
