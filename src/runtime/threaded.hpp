// The protocol on real threads — no simulator.
//
// Each node is exactly the paper's fig. 1: an *active* thread that sleeps
// δ, picks a random neighbor, pushes its state and waits (with timeout)
// for the pull reply; and a *passive* (receiver) thread that serves
// incoming pushes. Nodes exchange through an in-process LocalNetwork of
// mailboxes with optional message loss — a deployment stand-in that
// exercises the actual concurrency (locking, blocking receive, timeout,
// shutdown) without needing a testbed.
//
// The same exchange-atomicity rule as the event-driven stack applies: a
// node whose own push is in flight refuses incoming pushes, so the global
// sum is conserved exactly when no messages are lost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "runtime/mailbox.hpp"

namespace gossip::runtime {

struct Push {
  NodeId from;
  std::uint64_t seq = 0;
  double value = 0.0;
};

struct Reply {
  NodeId from;
  std::uint64_t seq = 0;
  double value = 0.0;
};

/// Busy NACK: the peer's own exchange is in flight, so it refuses ours
/// (exchange atomicity). The initiator skips the cycle immediately
/// instead of burning the whole timeout — without this, two nodes that
/// push to each other simultaneously stall for a full timeout each and
/// the stall cascades cluster-wide.
struct Busy {
  NodeId from;
  std::uint64_t seq = 0;
};

using RtMessage = std::variant<Push, Reply, Busy>;

struct ThreadedConfig {
  std::chrono::milliseconds cycle{10};    ///< δ
  std::chrono::milliseconds timeout{250}; ///< reply timeout
  double p_loss = 0.0;                    ///< per-message loss
};

class LocalNetwork {
public:
  LocalNetwork(std::uint32_t nodes, double p_loss, std::uint64_t seed);

  /// Thread-safe send; drops with the configured probability. Returns
  /// false when dropped or the destination is shut down.
  bool send(NodeId to, RtMessage message);

  [[nodiscard]] Mailbox<RtMessage>& mailbox(NodeId id);

  void close_all();

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(boxes_.size());
  }

private:
  std::vector<std::unique_ptr<Mailbox<RtMessage>>> boxes_;
  std::mutex rng_mutex_;
  Rng rng_;
  double p_loss_;
};

class ThreadedNode {
public:
  /// `network` must outlive the node; `neighbors` is this node's static
  /// overlay view.
  ThreadedNode(NodeId id, double initial_value,
               std::vector<NodeId> neighbors, LocalNetwork& network,
               const ThreadedConfig& config, std::uint64_t seed);
  ~ThreadedNode();

  ThreadedNode(const ThreadedNode&) = delete;
  ThreadedNode& operator=(const ThreadedNode&) = delete;

  void start();
  void stop();  ///< idempotent; joins both threads

  /// Sets the estimate before the threads exist (initial distribution).
  void set_initial_value(double value);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] double estimate() const;
  [[nodiscard]] std::uint64_t exchanges_completed() const {
    return exchanges_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }

private:
  void active_loop(const std::stop_token& token);
  void passive_loop(const std::stop_token& token);
  void serve_push(const Push& push);
  void apply_reply(const Reply& reply);
  void apply_busy(const Busy& busy);

  NodeId id_;
  std::vector<NodeId> neighbors_;
  LocalNetwork* network_;
  ThreadedConfig config_;
  Rng rng_;  // used by the active thread only

  mutable std::mutex state_mutex_;
  double estimate_;
  std::uint64_t pending_seq_ = 0;  // 0 = no exchange in flight
  double pending_reply_value_ = 0.0;
  bool pending_reply_ready_ = false;
  bool pending_refused_ = false;
  std::condition_variable_any reply_cv_;  // stop_token-aware waits

  std::atomic<std::uint64_t> exchanges_completed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::uint64_t next_seq_ = 1;

  std::jthread active_;
  std::jthread passive_;
  bool running_ = false;
};

/// Builds and drives a whole in-process deployment.
class Cluster {
public:
  /// `degree` random out-neighbors per node (the paper's "random"
  /// topology).
  Cluster(std::uint32_t nodes, std::uint32_t degree,
          const ThreadedConfig& config, std::uint64_t seed);

  /// Sets a node's initial value; only valid before start().
  void set_value(NodeId id, double value);

  void start();
  void stop();

  /// Lets the protocol run for the given wall-clock duration.
  static void run_for(std::chrono::milliseconds duration) {
    std::this_thread::sleep_for(duration);
  }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const ThreadedNode& node(NodeId id) const;
  [[nodiscard]] std::vector<double> estimates() const;

private:
  LocalNetwork network_;
  std::vector<std::unique_ptr<ThreadedNode>> nodes_;
  bool started_ = false;
};

}  // namespace gossip::runtime
