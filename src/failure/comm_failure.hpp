// Communication-level failure models of §6.2 / §7.2.
//
// Three distinct mechanisms, because they have distinct effects:
//  * link failure (P_d): the whole exchange silently never happens —
//    symmetric, only slows convergence (ρ_d = e^(P_d−1));
//  * request loss: the initiator's push never arrives — same symmetric
//    no-op as link failure;
//  * response loss: the passive peer has already replied *and updated*,
//    but the initiator never hears back — asymmetric, changes the global
//    sum. This is why fig. 7b looks so much worse than fig. 7a.
#pragma once

#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::failure {

/// How one attempted push–pull exchange ended.
enum class ExchangeOutcome {
  kCompleted,     ///< both peers updated
  kLinkDown,      ///< nothing happened (link failure)
  kRequestLost,   ///< nothing happened (push lost)
  kResponseLost,  ///< passive peer updated, initiator did not
};

/// Probabilities of the communication failures, applied independently to
/// every exchange.
class CommFailureModel {
public:
  CommFailureModel() = default;
  CommFailureModel(double p_link_down, double p_message_loss)
      : p_link_down_(p_link_down), p_message_loss_(p_message_loss) {
    GOSSIP_REQUIRE(p_link_down >= 0.0 && p_link_down <= 1.0,
                   "P_d must be a probability");
    GOSSIP_REQUIRE(p_message_loss >= 0.0 && p_message_loss <= 1.0,
                   "message loss must be a probability");
  }

  /// Fig. 7a model: each pairwise link is down with probability p.
  static CommFailureModel link_failure(double p) {
    return CommFailureModel(p, 0.0);
  }

  /// Fig. 7b model: every message (request or response) is independently
  /// lost with probability p.
  static CommFailureModel message_loss(double p) {
    return CommFailureModel(0.0, p);
  }

  static CommFailureModel none() { return CommFailureModel(); }

  [[nodiscard]] double p_link_down() const { return p_link_down_; }
  [[nodiscard]] double p_message_loss() const { return p_message_loss_; }

  /// Draws the fate of one exchange. Order matters and mirrors the wire:
  /// link down → request lost → response lost.
  ExchangeOutcome sample(Rng& rng) const {
    if (p_link_down_ > 0.0 && rng.chance(p_link_down_)) {
      return ExchangeOutcome::kLinkDown;
    }
    if (p_message_loss_ > 0.0) {
      if (rng.chance(p_message_loss_)) return ExchangeOutcome::kRequestLost;
      if (rng.chance(p_message_loss_)) return ExchangeOutcome::kResponseLost;
    }
    return ExchangeOutcome::kCompleted;
  }

private:
  double p_link_down_ = 0.0;
  double p_message_loss_ = 0.0;
};

}  // namespace gossip::failure
