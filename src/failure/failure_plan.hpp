// Node-level failure scenarios of §6–§7, expressed as *plans*: before
// every cycle the plan says how many nodes crash and how many join. The
// experiment driver executes the plan against the Population (crashes are
// injected before the cycle's exchanges — the paper's worst case, when
// estimate variance is at its maximum).
#pragma once

#include <cstdint>
#include <memory>

namespace gossip::failure {

/// What happens to the population right before a cycle runs. Beyond the
/// historical random kill/join counts, an event may carry a *targeted*
/// id-range kill (correlated block-scoped waves: every live node with
/// kill_lo <= id < kill_hi crashes) and an epoch-restart flag (every
/// live node re-seeds from its initial value and joins the epoch).
/// Drivers clamp the total kill volume so at least one node survives.
struct CycleEvent {
  std::uint32_t kills = 0;    ///< uniformly drawn victims
  std::uint32_t joins = 0;    ///< brand-new identities
  std::uint32_t kill_lo = 0;  ///< targeted id-range kill [kill_lo, kill_hi)
  std::uint32_t kill_hi = 0;  ///< empty when kill_hi <= kill_lo
  bool restart = false;       ///< epoch boundary: re-seed and re-admit
};

class FailurePlan {
public:
  virtual ~FailurePlan() = default;
  FailurePlan() = default;
  FailurePlan(const FailurePlan&) = delete;
  FailurePlan& operator=(const FailurePlan&) = delete;

  /// Event to apply before `cycle` (0-based) given the current live count.
  [[nodiscard]] virtual CycleEvent before_cycle(std::uint32_t cycle,
                                                std::uint32_t live) const = 0;
};

/// The §3 baseline: a static network.
class NoFailures final : public FailurePlan {
public:
  CycleEvent before_cycle(std::uint32_t, std::uint32_t) const override {
    return {};
  }
};

/// §6.1 / fig. 5: before every cycle a fixed proportion P_f of the
/// *current* nodes crashes (without replacement), so the live count decays
/// as N(1-P_f)^i.
class ProportionalCrash final : public FailurePlan {
public:
  explicit ProportionalCrash(double p_fail);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  double p_fail_;
};

/// Fig. 6a: a fixed fraction of the network dies at once, right before
/// `death_cycle`.
class SuddenDeath final : public FailurePlan {
public:
  SuddenDeath(std::uint32_t death_cycle, double fraction);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t death_cycle_;
  double fraction_;
};

/// Fig. 6b / fig. 8a: every cycle, `rate` nodes crash and `rate` brand-new
/// nodes join, keeping the size constant while the composition churns.
class Churn final : public FailurePlan {
public:
  explicit Churn(std::uint32_t rate);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t rate_;
};

/// Fig. 8a variant: a constant number of crashes per cycle, no
/// replacement.
class ConstantCrash final : public FailurePlan {
public:
  explicit ConstantCrash(std::uint32_t rate);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t rate_;
};

/// Correlated (cascading) crash waves: starting at `trigger`, one wave per
/// cycle for `waves` cycles. Wave w (0-based) wipes the contiguous id block
/// [w*block, (w+1)*block) — nodes that share a block (rack, datacenter, AS)
/// die together, unlike the independent-crash plans above.
class CorrelatedWaves final : public FailurePlan {
public:
  CorrelatedWaves(std::uint32_t trigger, std::uint32_t waves,
                  std::uint32_t block);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t trigger_;
  std::uint32_t waves_;
  std::uint32_t block_;
};

/// §4.2 epochs: every `period` cycles the protocol restarts — live nodes
/// re-seed from their initial local value and every node (including
/// previously joined ones sitting out) is admitted to the new epoch. No
/// node dies or joins.
class EpochRestart final : public FailurePlan {
public:
  explicit EpochRestart(std::uint32_t period);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t period_;
};

}  // namespace gossip::failure
