// Node-level failure scenarios of §6–§7, expressed as *plans*: before
// every cycle the plan says how many nodes crash and how many join. The
// experiment driver executes the plan against the Population (crashes are
// injected before the cycle's exchanges — the paper's worst case, when
// estimate variance is at its maximum).
#pragma once

#include <cstdint>
#include <memory>

namespace gossip::failure {

/// What happens to the population right before a cycle runs.
struct CycleEvent {
  std::uint32_t kills = 0;
  std::uint32_t joins = 0;
};

class FailurePlan {
public:
  virtual ~FailurePlan() = default;
  FailurePlan() = default;
  FailurePlan(const FailurePlan&) = delete;
  FailurePlan& operator=(const FailurePlan&) = delete;

  /// Event to apply before `cycle` (0-based) given the current live count.
  [[nodiscard]] virtual CycleEvent before_cycle(std::uint32_t cycle,
                                                std::uint32_t live) const = 0;
};

/// The §3 baseline: a static network.
class NoFailures final : public FailurePlan {
public:
  CycleEvent before_cycle(std::uint32_t, std::uint32_t) const override {
    return {};
  }
};

/// §6.1 / fig. 5: before every cycle a fixed proportion P_f of the
/// *current* nodes crashes (without replacement), so the live count decays
/// as N(1-P_f)^i.
class ProportionalCrash final : public FailurePlan {
public:
  explicit ProportionalCrash(double p_fail);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  double p_fail_;
};

/// Fig. 6a: a fixed fraction of the network dies at once, right before
/// `death_cycle`.
class SuddenDeath final : public FailurePlan {
public:
  SuddenDeath(std::uint32_t death_cycle, double fraction);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t death_cycle_;
  double fraction_;
};

/// Fig. 6b / fig. 8a: every cycle, `rate` nodes crash and `rate` brand-new
/// nodes join, keeping the size constant while the composition churns.
class Churn final : public FailurePlan {
public:
  explicit Churn(std::uint32_t rate);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t rate_;
};

/// Fig. 8a variant: a constant number of crashes per cycle, no
/// replacement.
class ConstantCrash final : public FailurePlan {
public:
  explicit ConstantCrash(std::uint32_t rate);
  CycleEvent before_cycle(std::uint32_t cycle,
                          std::uint32_t live) const override;

private:
  std::uint32_t rate_;
};

}  // namespace gossip::failure
