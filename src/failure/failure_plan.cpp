#include "failure/failure_plan.hpp"

#include <cmath>

#include "common/require.hpp"

namespace gossip::failure {

ProportionalCrash::ProportionalCrash(double p_fail) : p_fail_(p_fail) {
  GOSSIP_REQUIRE(p_fail >= 0.0 && p_fail < 1.0, "P_f must be in [0,1)");
}

CycleEvent ProportionalCrash::before_cycle(std::uint32_t,
                                           std::uint32_t live) const {
  const auto kills = static_cast<std::uint32_t>(
      std::floor(p_fail_ * static_cast<double>(live)));
  return {.kills = kills, .joins = 0};
}

SuddenDeath::SuddenDeath(std::uint32_t death_cycle, double fraction)
    : death_cycle_(death_cycle), fraction_(fraction) {
  GOSSIP_REQUIRE(fraction >= 0.0 && fraction < 1.0,
                 "death fraction must be in [0,1)");
}

CycleEvent SuddenDeath::before_cycle(std::uint32_t cycle,
                                     std::uint32_t live) const {
  if (cycle != death_cycle_) return {};
  const auto kills = static_cast<std::uint32_t>(
      std::floor(fraction_ * static_cast<double>(live)));
  return {.kills = kills, .joins = 0};
}

Churn::Churn(std::uint32_t rate) : rate_(rate) {}

CycleEvent Churn::before_cycle(std::uint32_t, std::uint32_t live) const {
  // Never kill the whole network: churn is bounded by the live count
  // minus one so an observer always remains.
  const std::uint32_t kills = live > rate_ ? rate_ : (live > 0 ? live - 1 : 0);
  return {.kills = kills, .joins = rate_};
}

ConstantCrash::ConstantCrash(std::uint32_t rate) : rate_(rate) {}

CycleEvent ConstantCrash::before_cycle(std::uint32_t,
                                       std::uint32_t live) const {
  const std::uint32_t kills = live > rate_ ? rate_ : (live > 0 ? live - 1 : 0);
  return {.kills = kills, .joins = 0};
}

CorrelatedWaves::CorrelatedWaves(std::uint32_t trigger, std::uint32_t waves,
                                 std::uint32_t block)
    : trigger_(trigger), waves_(waves), block_(block) {
  GOSSIP_REQUIRE(waves >= 1, "correlated waves need at least one wave");
  GOSSIP_REQUIRE(block >= 1, "correlated wave block width must be >= 1");
}

CycleEvent CorrelatedWaves::before_cycle(std::uint32_t cycle,
                                         std::uint32_t) const {
  if (cycle < trigger_ || cycle - trigger_ >= waves_) return {};
  const std::uint32_t wave = cycle - trigger_;
  CycleEvent ev;
  ev.kill_lo = wave * block_;
  ev.kill_hi = ev.kill_lo + block_;
  return ev;
}

EpochRestart::EpochRestart(std::uint32_t period) : period_(period) {
  GOSSIP_REQUIRE(period >= 1, "epoch restart period must be >= 1");
}

CycleEvent EpochRestart::before_cycle(std::uint32_t cycle,
                                      std::uint32_t) const {
  CycleEvent ev;
  ev.restart = cycle > 0 && cycle % period_ == 0;
  return ev;
}

}  // namespace gossip::failure
