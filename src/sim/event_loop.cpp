#include "sim/event_loop.hpp"

#include <utility>

namespace gossip::sim {

TaskId EventLoop::schedule_at(SimTime at, Callback fn) {
  GOSSIP_REQUIRE(at >= now_, "cannot schedule into the past");
  GOSSIP_REQUIRE(static_cast<bool>(fn), "cannot schedule an empty callback");
  const TaskId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventLoop::cancel(TaskId id) {
  // The heap entry stays behind as a tombstone; pop_next skips it.
  return callbacks_.erase(id) > 0;
}

bool EventLoop::pop_next(Entry& out) {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    if (callbacks_.contains(e.id)) {
      out = e;
      return true;
    }
    queue_.pop();  // cancelled tombstone
  }
  return false;
}

bool EventLoop::step() {
  Entry e;
  if (!pop_next(e)) return false;
  queue_.pop();
  auto node = callbacks_.extract(e.id);
  now_ = e.at;
  ++executed_;
  node.mapped()();
  return true;
}

void EventLoop::run_until(SimTime until) {
  for (;;) {
    Entry e;
    if (!pop_next(e) || e.at > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void EventLoop::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    GOSSIP_REQUIRE(++n <= max_events,
                   "event loop exceeded max_events — runaway schedule?");
  }
}

}  // namespace gossip::sim
