// Discrete-event simulation kernel.
//
// A monotonic virtual clock plus a priority queue of callbacks. Events at
// equal timestamps run in scheduling (FIFO) order, which together with
// the seeded Rng makes every simulation fully deterministic. This is the
// substrate for the event-driven protocol stack (src/proto) — the
// paper's "practical protocol" conditions with real message delays,
// timeouts and unsynchronized cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/require.hpp"

namespace gossip::sim {

/// Virtual time in microseconds (granular enough for network latencies,
/// wide enough for years of simulated uptime).
using SimTime = std::uint64_t;

/// Identifies a scheduled event for cancellation.
using TaskId = std::uint64_t;

class EventLoop {
public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (>= now).
  TaskId schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after `delay` from now.
  TaskId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled.
  bool cancel(TaskId id);

  /// Runs the next event. Returns false when the queue is empty.
  bool step();

  /// Runs every event with time <= `until` (inclusive); the clock ends at
  /// `until` even if the queue drained earlier.
  void run_until(SimTime until);

  /// Drains the queue completely. Guarded against runaway periodic
  /// schedules via `max_events`.
  void run(std::uint64_t max_events = 100'000'000);

  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    TaskId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live (non-cancelled) entry; false if none.
  bool pop_next(Entry& out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<TaskId, Callback> callbacks_;
};

}  // namespace gossip::sim
