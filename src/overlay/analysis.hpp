// Structural measurements over generated overlays; used by tests to check
// the generators have the properties the paper's topology study relies on
// (connectivity, degree regularity, small-world path shortening, BA
// degree-tail heaviness).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "overlay/graph.hpp"
#include "stats/summary.hpp"

namespace gossip::overlay {

/// Connectivity treating all edges as bidirectional (weak connectivity for
/// directed graphs). The aggregation protocol only needs the overlay to be
/// connected in this sense (§3).
bool is_connected(const Graph& g);

/// Out-degree summary.
stats::Summary degree_summary(const Graph& g);

/// Maximum out-degree; the BA tail check.
std::uint32_t max_degree(const Graph& g);

/// Local clustering coefficient averaged over `samples` random nodes
/// (exact when samples >= n). High for ring lattices, ~k/n for random.
double clustering_coefficient(const Graph& g, Rng& rng,
                              std::uint32_t samples);

/// Mean shortest-path length from `sources` random BFS roots to all
/// reachable nodes. O(sources * (n + m)).
double mean_path_length(const Graph& g, Rng& rng, std::uint32_t sources);

/// BFS distances from a single node (-1 for unreachable), following edges
/// in both directions.
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId from);

}  // namespace gossip::overlay
