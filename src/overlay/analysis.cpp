#include "overlay/analysis.hpp"

#include <algorithm>
#include <deque>

#include "common/require.hpp"

namespace gossip::overlay {

namespace {

/// Symmetric adjacency (forward + reverse edges) for BFS over directed
/// overlays; returns empty when the graph is already undirected.
std::vector<std::vector<NodeId>> symmetric_adjacency(const Graph& g) {
  std::vector<std::vector<NodeId>> adj(g.node_count());
  for (std::uint32_t u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.neighbors(NodeId(u))) {
      adj[u].push_back(v);
      adj[v.value()].emplace_back(u);
    }
  }
  return adj;
}

template <typename NeighborsFn>
std::vector<std::int32_t> bfs(std::uint32_t n, NodeId from,
                              NeighborsFn&& neighbors_of) {
  std::vector<std::int32_t> dist(n, -1);
  std::deque<NodeId> frontier;
  dist[from.value()] = 0;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto du = dist[u.value()];
    for (NodeId v : neighbors_of(u)) {
      if (dist[v.value()] == -1) {
        dist[v.value()] = du + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId from) {
  GOSSIP_REQUIRE(from.is_valid() && from.value() < g.node_count(),
                 "bfs_distances() source out of range");
  if (!g.directed()) {
    return bfs(g.node_count(), from,
               [&g](NodeId u) { return g.neighbors(u); });
  }
  const auto adj = symmetric_adjacency(g);
  return bfs(g.node_count(), from, [&adj](NodeId u) {
    return std::span<const NodeId>(adj[u.value()]);
  });
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, NodeId(0));
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d < 0; });
}

stats::Summary degree_summary(const Graph& g) {
  std::vector<double> degrees;
  degrees.reserve(g.node_count());
  for (std::uint32_t u = 0; u < g.node_count(); ++u) {
    degrees.push_back(static_cast<double>(g.degree(NodeId(u))));
  }
  return stats::summarize(degrees);
}

std::uint32_t max_degree(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t u = 0; u < g.node_count(); ++u) {
    best = std::max(best, g.degree(NodeId(u)));
  }
  return best;
}

double clustering_coefficient(const Graph& g, Rng& rng,
                              std::uint32_t samples) {
  GOSSIP_REQUIRE(!g.directed(),
                 "clustering coefficient is defined here for undirected "
                 "overlays only");
  const std::uint32_t n = g.node_count();
  if (n == 0) return 0.0;
  double total = 0.0;
  std::uint32_t counted = 0;
  const bool exhaustive = samples >= n;
  const std::uint32_t trials = exhaustive ? n : samples;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const NodeId u(exhaustive ? t
                              : static_cast<std::uint32_t>(rng.below(n)));
    const auto ns = g.neighbors(u);
    const std::size_t deg = ns.size();
    if (deg < 2) continue;
    std::uint64_t closed = 0;
    for (std::size_t i = 0; i < deg; ++i) {
      for (std::size_t j = i + 1; j < deg; ++j) {
        if (g.has_edge(ns[i], ns[j])) ++closed;
      }
    }
    total += static_cast<double>(closed) /
             (static_cast<double>(deg) * (deg - 1) / 2.0);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double mean_path_length(const Graph& g, Rng& rng, std::uint32_t sources) {
  GOSSIP_REQUIRE(sources >= 1, "need at least one BFS source");
  const std::uint32_t n = g.node_count();
  GOSSIP_REQUIRE(n >= 2, "path length needs at least two nodes");
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (std::uint32_t s = 0; s < sources; ++s) {
    const NodeId src(static_cast<std::uint32_t>(rng.below(n)));
    for (std::int32_t d : bfs_distances(g, src)) {
      if (d > 0) {
        total += d;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace gossip::overlay
