// Compact immutable graph in compressed-sparse-row form.
//
// Overlay topologies (paper §4.4) are built once per experiment and then
// only queried for neighbor sets, so the representation is optimized for
// that: one offsets array, one flat neighbor array, cache-friendly at the
// 10⁵–10⁶-node scale of the paper's sweeps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/node_id.hpp"

namespace gossip::overlay {

/// Immutable adjacency structure. For undirected graphs every edge is
/// stored in both endpoint lists; `edge_count()` reports logical edges.
class Graph {
public:
  Graph() = default;

  /// Builds from per-node adjacency lists. When `directed` is false the
  /// lists must already be symmetric (generators guarantee this; validated
  /// in debug use via validate()).
  static Graph from_adjacency(const std::vector<std::vector<NodeId>>& adj,
                              bool directed);

  [[nodiscard]] std::uint32_t node_count() const {
    return offsets_.empty()
               ? 0
               : static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// Logical edge count (undirected edges counted once).
  [[nodiscard]] std::uint64_t edge_count() const {
    const auto stored = static_cast<std::uint64_t>(targets_.size());
    return directed_ ? stored : stored / 2;
  }

  [[nodiscard]] bool directed() const { return directed_; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const;

  [[nodiscard]] std::uint32_t degree(NodeId node) const {
    return static_cast<std::uint32_t>(neighbors(node).size());
  }

  /// True if `to` appears in `from`'s neighbor list (linear scan; lists
  /// are short in every topology the paper studies).
  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  /// Structural checks: no self-loops, no duplicate neighbors, targets in
  /// range, symmetry when undirected. Throws require_error on violation.
  void validate() const;

private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> targets_;
  bool directed_ = false;
};

}  // namespace gossip::overlay
