#include "overlay/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/require.hpp"

namespace gossip::overlay {

Graph Graph::from_adjacency(const std::vector<std::vector<NodeId>>& adj,
                            bool directed) {
  Graph g;
  g.directed_ = directed;
  g.offsets_.reserve(adj.size() + 1);
  g.offsets_.push_back(0);
  std::uint64_t total = 0;
  for (const auto& list : adj) {
    total += list.size();
    g.offsets_.push_back(total);
  }
  g.targets_.reserve(total);
  for (const auto& list : adj) {
    g.targets_.insert(g.targets_.end(), list.begin(), list.end());
  }
  return g;
}

std::span<const NodeId> Graph::neighbors(NodeId node) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < node_count(),
                 "neighbors() node out of range");
  const auto begin = offsets_[node.value()];
  const auto end = offsets_[node.value() + 1];
  return {targets_.data() + begin, targets_.data() + end};
}

bool Graph::has_edge(NodeId from, NodeId to) const {
  const auto ns = neighbors(from);
  return std::find(ns.begin(), ns.end(), to) != ns.end();
}

void Graph::validate() const {
  const std::uint32_t n = node_count();
  for (std::uint32_t u = 0; u < n; ++u) {
    const NodeId id(u);
    std::unordered_set<NodeId> seen;
    for (NodeId v : neighbors(id)) {
      GOSSIP_REQUIRE(v.is_valid() && v.value() < n,
                     "neighbor target out of range");
      GOSSIP_REQUIRE(v != id, "self-loop");
      GOSSIP_REQUIRE(seen.insert(v).second, "duplicate neighbor");
      if (!directed_) {
        GOSSIP_REQUIRE(has_edge(v, id), "undirected edge not symmetric");
      }
    }
  }
}

}  // namespace gossip::overlay
