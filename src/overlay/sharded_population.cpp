#include "overlay/sharded_population.hpp"

#include <algorithm>

#include "overlay/population.hpp"  // shared kMaxRejections budget

namespace gossip::overlay {

ShardedPopulation::ShardedPopulation(std::uint32_t initial, unsigned shards)
    : shards_(shards) {
  GOSSIP_REQUIRE(shards >= 1, "need at least one shard");
  locks_ = std::make_unique<std::mutex[]>(shards_);
  live_.reserve(initial);
  position_.reserve(initial);
  for (std::uint32_t i = 0; i < initial; ++i) {
    live_.emplace_back(i);
    position_.push_back(i);
  }
  seg_offsets_.assign(shards_ + 1, 0);
}

void ShardedPopulation::lock_all() const {
  // gossip-lint: allow(bare-mutex-lock): ordered acquisition over a
  // runtime-sized shard-lock array; a scoped guard cannot span the loop.
  for (unsigned s = 0; s < shards_; ++s) locks_[s].lock();
}

void ShardedPopulation::unlock_all() const {
  // gossip-lint: allow(bare-mutex-lock): reverse-order release matching
  // lock_all(); every caller pairs the two around a full-overlay op.
  for (unsigned s = shards_; s > 0; --s) locks_[s - 1].unlock();
}

NodeId ShardedPopulation::add() {
  lock_all();
  const NodeId id(total());
  position_.push_back(live_count());
  live_.push_back(id);
  unlock_all();
  return id;
}

void ShardedPopulation::kill(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < total(),
                 "kill() id out of range");
  lock_all();
  const std::uint32_t pos = position_[id.value()];
  GOSSIP_REQUIRE(pos != kDead, "kill() on an already dead node");
  const NodeId moved = live_.back();
  live_[pos] = moved;
  position_[moved.value()] = pos;
  live_.pop_back();
  position_[id.value()] = kDead;
  unlock_all();
}

void ShardedPopulation::kill_many(std::span<const NodeId> victims,
                                  const ParallelFor* par) {
  if (victims.empty()) return;
  GOSSIP_REQUIRE(victims.size() <= live_.size(),
                 "kill_many() exceeds the live population");
  lock_all();
  // Phase 0 (serial, O(victims)): mark. A repeated victim trips the
  // already-dead requirement, so distinctness comes for free.
  for (NodeId v : victims) {
    GOSSIP_REQUIRE(v.is_valid() && v.value() < total(),
                   "kill_many() id out of range");
    GOSSIP_REQUIRE(position_[v.value()] != kDead,
                   "kill_many() on an already dead node");
    position_[v.value()] = kDead;
  }

  const std::size_t n = live_.size();
  const auto run = [&](std::size_t count,
                       const std::function<void(std::size_t)>& job) {
    if (par != nullptr) {
      (*par)(count, job);
    } else {
      for (std::size_t i = 0; i < count; ++i) job(i);
    }
  };

  // Phase 1 (parallel over segments): count survivors per segment.
  run(shards_, [&](std::size_t s) {
    const auto [lo, hi] = segment_bounds(static_cast<unsigned>(s), n);
    std::size_t kept = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      kept += position_[live_[i].value()] != kDead;
    }
    seg_offsets_[s + 1] = kept;
  });
  // Serial exclusive scan over the (tiny) per-segment counts.
  seg_offsets_[0] = 0;
  for (unsigned s = 0; s < shards_; ++s) {
    seg_offsets_[s + 1] += seg_offsets_[s];
  }

  // Phase 2 (parallel over segments): stable scatter of the survivors
  // and position rebuild. Writes are disjoint by construction — segment
  // s owns output slots [seg_offsets_[s], seg_offsets_[s+1]).
  compact_.resize(seg_offsets_[shards_]);
  run(shards_, [&](std::size_t s) {
    const auto [lo, hi] = segment_bounds(static_cast<unsigned>(s), n);
    std::size_t out = seg_offsets_[s];
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId id = live_[i];
      if (position_[id.value()] == kDead) continue;
      compact_[out] = id;
      position_[id.value()] = static_cast<std::uint32_t>(out);
      ++out;
    }
  });
  live_.swap(compact_);
  unlock_all();
}

std::uint32_t ShardedPopulation::kill_range(std::uint32_t lo, std::uint32_t hi,
                                            std::uint32_t max_kills,
                                            const ParallelFor* par) {
  // The victim scan is serial and in ascending id order: the victim *set*
  // (and therefore the stable compaction) is a pure function of the
  // population state, independent of shards/threads.
  std::vector<NodeId> victims;
  const std::uint32_t end = hi < total() ? hi : total();
  for (std::uint32_t id = lo;
       id < end && victims.size() < max_kills; ++id) {
    if (position_[id] == kDead) continue;
    victims.emplace_back(id);
  }
  kill_many(victims, par);
  return static_cast<std::uint32_t>(victims.size());
}

NodeId ShardedPopulation::sample_live(Rng& rng) const {
  GOSSIP_REQUIRE(!live_.empty(), "sample_live() on an empty population");
  return live_[rng.below(live_.size())];
}

NodeId ShardedPopulation::sample_live_other(NodeId self, Rng& rng) const {
  GOSSIP_REQUIRE(!live_.empty(), "sample_live_other() on empty population");
  if (live_.size() == 1 && live_.front() == self) return NodeId::invalid();
  for (int attempt = 0; attempt < Population::kMaxRejections; ++attempt) {
    const NodeId pick = live_[rng.below(live_.size())];
    if (pick != self) return pick;
  }
  const std::uint32_t self_pos = position_[self.value()];
  std::uint64_t idx = rng.below(live_.size() - 1);
  if (idx >= self_pos) ++idx;
  return live_[idx];
}

std::pair<std::uint32_t, std::uint32_t> ShardedPopulation::id_range(
    unsigned shard) const {
  GOSSIP_REQUIRE(shard < shards_, "id_range() shard out of range");
  const std::uint64_t n = total();
  return {static_cast<std::uint32_t>(n * shard / shards_),
          static_cast<std::uint32_t>(n * (shard + 1) / shards_)};
}

std::pair<std::size_t, std::size_t> ShardedPopulation::segment_bounds(
    unsigned shard, std::size_t n) const {
  return {n * shard / shards_, n * (shard + 1) / shards_};
}

std::span<const NodeId> ShardedPopulation::segment(unsigned shard) const {
  GOSSIP_REQUIRE(shard < shards_, "segment() index out of range");
  const auto [lo, hi] = segment_bounds(shard, live_.size());
  return {live_.data() + lo, hi - lo};
}

}  // namespace gossip::overlay
