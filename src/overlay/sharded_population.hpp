// Sharded live/dead membership for intra-repetition parallelism.
//
// Same contract as Population — dense never-reused ids, O(1) kill/join,
// uniform live sampling — but built for a single giant-N repetition whose
// cycles are executed by several threads at once:
//
//  * the live list's index space is split into `shards` independently
//    lockable segments (writers take every segment lock, readers that
//    need a stable view of one segment take just that one), and the node
//    id space has a matching contiguous decomposition (id_range) the
//    domain-decomposed engine partitions its per-cycle sweeps by;
//  * kill_many() retires a whole batch of victims with a *stable*
//    compaction of the live list whose result depends only on the victim
//    set — not on shard count, thread count, or schedule — so the
//    intra-rep engine's output is bit-identical for 1/2/8 shards. The
//    count/scan/scatter phases parallelize over segments through a
//    caller-supplied executor;
//  * the sequential mutators (add / kill) and samplers are instruction-
//    for-instruction the dense Population semantics, so an op trace
//    replayed against both implementations yields bit-identical
//    sample_live/kill sequences (pinned in tests/determinism_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::overlay {

/// Minimal executor seam: run job(0) … job(count-1), possibly in
/// parallel. Kept as a std::function so the overlay layer does not
/// depend on the experiment engine's thread pool.
using ParallelFor =
    std::function<void(std::size_t count,
                       const std::function<void(std::size_t)>& job)>;

class ShardedPopulation {
public:
  /// Starts with `initial` live nodes, ids [0, initial); `shards`
  /// independently lockable segments (>= 1).
  ShardedPopulation(std::uint32_t initial, unsigned shards);

  [[nodiscard]] unsigned shards() const { return shards_; }

  /// Adds a brand-new live node and returns its id (== total() - 1).
  /// Takes every segment lock (exclusive mutation).
  NodeId add();

  /// Marks one live node as crashed — the dense Population::kill
  /// swap-remove, bit-compatible with it. Takes every segment lock.
  void kill(NodeId id);

  /// Retires a whole batch of distinct live victims at once via a stable
  /// compaction: survivors keep their relative live-list order, so the
  /// resulting state is a pure function of (previous state, victim set)
  /// — independent of shard count and of how `par` schedules the segment
  /// jobs. Pass nullptr to run the phases serially.
  void kill_many(std::span<const NodeId> victims, const ParallelFor* par);

  /// Kills every live node with id in [lo, hi) — at most `max_kills` of
  /// them, scanning ids in ascending order — via kill_many's stable
  /// compaction, so the result is shard- and schedule-invariant. Returns
  /// the number killed.
  std::uint32_t kill_range(std::uint32_t lo, std::uint32_t hi,
                           std::uint32_t max_kills, const ParallelFor* par);

  [[nodiscard]] bool alive(NodeId id) const {
    GOSSIP_REQUIRE(id.is_valid() && id.value() < total(),
                   "alive() id out of range");
    return position_[id.value()] != kDead;
  }

  /// alive() without the range check (hot parallel sweeps over ids the
  /// caller already bounded).
  [[nodiscard]] bool alive_unchecked(NodeId id) const noexcept {
    return position_[id.value()] != kDead;
  }

  [[nodiscard]] std::uint32_t total() const {
    return static_cast<std::uint32_t>(position_.size());
  }

  [[nodiscard]] std::uint32_t live_count() const {
    return static_cast<std::uint32_t>(live_.size());
  }

  /// Live ids in unspecified order (changes on kill/kill_many).
  [[nodiscard]] const std::vector<NodeId>& live() const { return live_; }

  /// Uniform random live node; same draw sequence as Population.
  NodeId sample_live(Rng& rng) const;

  /// Uniform random live node different from `self`; same bounded
  /// rejection scheme as Population::sample_live_other.
  NodeId sample_live_other(NodeId self, Rng& rng) const;

  // ---- domain decomposition ---------------------------------------------

  /// Contiguous id-space slice [lo, hi) owned by `shard` — the unit the
  /// intra-rep engine partitions its per-node sweeps by. Covers every id
  /// ever issued; dead ids are skipped by the sweep's alive check.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> id_range(
      unsigned shard) const;

  /// Current slice of the live list belonging to `shard`'s segment.
  /// Invalidated by any mutation.
  [[nodiscard]] std::span<const NodeId> segment(unsigned shard) const;

  /// Lock one segment against concurrent mutation (mutators take all
  /// segment locks, so holding any one of them excludes them).
  [[nodiscard]] std::unique_lock<std::mutex> lock_segment(
      unsigned shard) const {
    GOSSIP_REQUIRE(shard < shards_, "segment index out of range");
    return std::unique_lock<std::mutex>(locks_[shard]);
  }

private:
  static constexpr std::uint32_t kDead = static_cast<std::uint32_t>(-1);

  void lock_all() const;
  void unlock_all() const;

  /// [lo, hi) chunk of the live list owned by segment s.
  [[nodiscard]] std::pair<std::size_t, std::size_t> segment_bounds(
      unsigned shard, std::size_t n) const;

  unsigned shards_;
  std::unique_ptr<std::mutex[]> locks_;  // one per segment
  std::vector<NodeId> live_;             // compact list of live ids
  std::vector<std::uint32_t> position_;  // id -> index in live_, or kDead
  std::vector<NodeId> compact_;          // kill_many scatter target
  std::vector<std::size_t> seg_offsets_;  // kill_many survivor prefix sums
};

}  // namespace gossip::overlay
