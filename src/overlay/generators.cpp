#include "overlay/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/require.hpp"

namespace gossip::overlay {

namespace {

/// Removes the first occurrence of `value` from `list` (swap-pop).
void remove_neighbor(std::vector<NodeId>& list, NodeId value) {
  auto it = std::find(list.begin(), list.end(), value);
  GOSSIP_REQUIRE(it != list.end(), "edge bookkeeping out of sync");
  *it = list.back();
  list.pop_back();
}

bool contains(const std::vector<NodeId>& list, NodeId value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}

}  // namespace

Graph complete_graph(std::uint32_t n) {
  GOSSIP_REQUIRE(n >= 2, "complete graph needs at least two nodes");
  std::vector<std::vector<NodeId>> adj(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    adj[u].reserve(n - 1);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v != u) adj[u].emplace_back(v);
    }
  }
  return Graph::from_adjacency(adj, /*directed=*/false);
}

Graph random_k_out(std::uint32_t n, std::uint32_t k, Rng& rng) {
  GOSSIP_REQUIRE(k >= 1 && k < n, "need 1 <= k < n");
  std::vector<std::vector<NodeId>> adj(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    adj[u].reserve(k);
    // Sample k distinct values from [0, n-1) and shift past `u` to skip
    // the self-loop without rejection.
    for (std::uint64_t raw : rng.sample_distinct(n - 1, k)) {
      const auto v = static_cast<std::uint32_t>(raw >= u ? raw + 1 : raw);
      adj[u].emplace_back(v);
    }
  }
  return Graph::from_adjacency(adj, /*directed=*/true);
}

Graph ring_lattice(std::uint32_t n, std::uint32_t k) {
  GOSSIP_REQUIRE(n >= 3, "ring lattice needs at least three nodes");
  GOSSIP_REQUIRE(k >= 2 && k % 2 == 0 && k < n,
                 "ring lattice needs even k with 2 <= k < n");
  std::vector<std::vector<NodeId>> adj(n);
  for (auto& list : adj) list.reserve(k);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const std::uint32_t v = (u + j) % n;
      adj[u].emplace_back(v);
      adj[v].emplace_back(u);
    }
  }
  return Graph::from_adjacency(adj, /*directed=*/false);
}

Graph watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                     Rng& rng) {
  GOSSIP_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  GOSSIP_REQUIRE(n >= 3, "Watts-Strogatz needs at least three nodes");
  GOSSIP_REQUIRE(k >= 2 && k % 2 == 0 && k < n,
                 "Watts-Strogatz needs even k with 2 <= k < n");
  std::vector<std::vector<NodeId>> adj(n);
  for (auto& list : adj) list.reserve(k + 4);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const std::uint32_t v = (u + j) % n;
      adj[u].emplace_back(v);
      adj[v].emplace_back(u);
    }
  }
  // Rewire the far endpoint of each lattice edge with probability beta,
  // scanning ring-distance rounds as in the original model.
  constexpr int kMaxRetries = 64;
  for (std::uint32_t j = 1; j <= k / 2; ++j) {
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!rng.chance(beta)) continue;
      const NodeId self(u);
      const NodeId old_target((u + j) % n);
      // The edge may already have been rewired away from `u` by an earlier
      // round acting on the other endpoint — it cannot: rounds only rewire
      // edges they own ((u, u+j) is owned by u at round j). Still guard.
      if (!contains(adj[u], old_target)) continue;
      NodeId fresh = NodeId::invalid();
      for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
        const NodeId candidate(
            static_cast<std::uint32_t>(rng.below(n)));
        if (candidate == self || candidate == old_target) continue;
        if (contains(adj[u], candidate)) continue;
        fresh = candidate;
        break;
      }
      if (!fresh.is_valid()) continue;  // dense neighborhood; keep edge
      remove_neighbor(adj[u], old_target);
      remove_neighbor(adj[old_target.value()], self);
      adj[u].push_back(fresh);
      adj[fresh.value()].push_back(self);
    }
  }
  return Graph::from_adjacency(adj, /*directed=*/false);
}

Graph barabasi_albert(std::uint32_t n, std::uint32_t m, Rng& rng) {
  GOSSIP_REQUIRE(m >= 1, "Barabasi-Albert needs m >= 1");
  GOSSIP_REQUIRE(n > m + 1, "Barabasi-Albert needs n > m+1 nodes");
  std::vector<std::vector<NodeId>> adj(n);
  // `stubs` holds one entry per edge endpoint, so uniform sampling from it
  // is sampling proportional to degree.
  std::vector<NodeId> stubs;
  stubs.reserve(2ull * m * n);
  // Seed clique on m+1 nodes.
  for (std::uint32_t u = 0; u <= m; ++u) {
    for (std::uint32_t v = u + 1; v <= m; ++v) {
      adj[u].emplace_back(v);
      adj[v].emplace_back(u);
      stubs.emplace_back(u);
      stubs.emplace_back(v);
    }
  }
  std::vector<NodeId> chosen;
  chosen.reserve(m);
  for (std::uint32_t u = m + 1; u < n; ++u) {
    chosen.clear();
    while (chosen.size() < m) {
      const NodeId candidate = stubs[rng.below(stubs.size())];
      if (contains(chosen, candidate)) continue;
      chosen.push_back(candidate);
    }
    for (NodeId v : chosen) {
      adj[u].push_back(v);
      adj[v.value()].emplace_back(u);
      stubs.emplace_back(u);
      stubs.push_back(v);
    }
  }
  return Graph::from_adjacency(adj, /*directed=*/false);
}

}  // namespace gossip::overlay
