#include "overlay/population.hpp"

namespace gossip::overlay {

Population::Population(std::uint32_t initial) {
  live_.reserve(initial);
  position_.reserve(initial);
  for (std::uint32_t i = 0; i < initial; ++i) {
    live_.emplace_back(i);
    position_.push_back(i);
  }
}

NodeId Population::add() {
  const NodeId id(total());
  position_.push_back(live_count());
  live_.push_back(id);
  return id;
}

void Population::kill(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < total(),
                 "kill() id out of range");
  const std::uint32_t pos = position_[id.value()];
  GOSSIP_REQUIRE(pos != kDead, "kill() on an already dead node");
  const NodeId moved = live_.back();
  live_[pos] = moved;
  position_[moved.value()] = pos;
  live_.pop_back();
  position_[id.value()] = kDead;
}

std::uint32_t Population::kill_range(std::uint32_t lo, std::uint32_t hi,
                                     std::uint32_t max_kills) {
  std::uint32_t killed = 0;
  const std::uint32_t end = hi < total() ? hi : total();
  for (std::uint32_t id = lo; id < end && killed < max_kills; ++id) {
    if (position_[id] == kDead) continue;
    kill(NodeId(id));
    ++killed;
  }
  return killed;
}

NodeId Population::sample_live(Rng& rng) const {
  GOSSIP_REQUIRE(!live_.empty(), "sample_live() on an empty population");
  return live_[rng.below(live_.size())];
}

NodeId Population::sample_live_other(NodeId self, Rng& rng) const {
  GOSSIP_REQUIRE(!live_.empty(), "sample_live_other() on empty population");
  if (live_.size() == 1 && live_.front() == self) return NodeId::invalid();
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    const NodeId pick = live_[rng.below(live_.size())];
    if (pick != self) return pick;
  }
  // Only a live `self` can collide, and the 1-live case returned above,
  // so here live_.size() >= 2 and self occupies one known slot: draw
  // uniformly over the other slots and skip past it.
  const std::uint32_t self_pos = position_[self.value()];
  std::uint64_t idx = rng.below(live_.size() - 1);
  if (idx >= self_pos) ++idx;
  return live_[idx];
}

}  // namespace gossip::overlay
