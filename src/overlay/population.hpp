// Live/dead membership of a simulated network with O(1) kill, join and
// uniform sampling of live nodes.
//
// Node ids are dense and never reused: per-node protocol state lives in
// arrays indexed by NodeId that only ever grow. This is what the churn
// experiments (fig. 6b) need — every replacement node is a brand-new
// identity that must not inherit the estimate of the node it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::overlay {

class Population {
public:
  /// Starts with `initial` live nodes, ids [0, initial).
  explicit Population(std::uint32_t initial);

  /// Adds a brand-new live node and returns its id (== total() - 1).
  NodeId add();

  /// Marks a live node as crashed. O(1).
  void kill(NodeId id);

  /// Kills every live node with id in [lo, hi), scanning ids in ascending
  /// order, but at most `max_kills` of them. Returns the number killed.
  /// This is the correlated-wave primitive: the block defines *which*
  /// nodes die, the budget keeps the caller's survivor guarantee.
  std::uint32_t kill_range(std::uint32_t lo, std::uint32_t hi,
                           std::uint32_t max_kills);

  [[nodiscard]] bool alive(NodeId id) const {
    GOSSIP_REQUIRE(id.is_valid() && id.value() < total(),
                   "alive() id out of range");
    return position_[id.value()] != kDead;
  }

  /// alive() without the range check, for per-node hot loops whose ids
  /// provably come from this population (live list walks, ids already
  /// range-checked against total()).
  [[nodiscard]] bool alive_unchecked(NodeId id) const noexcept {
    return position_[id.value()] != kDead;
  }

  /// Number of ids ever issued (live + dead).
  [[nodiscard]] std::uint32_t total() const {
    return static_cast<std::uint32_t>(position_.size());
  }

  [[nodiscard]] std::uint32_t live_count() const {
    return static_cast<std::uint32_t>(live_.size());
  }

  /// Live ids in unspecified order (changes on kill).
  [[nodiscard]] const std::vector<NodeId>& live() const { return live_; }

  /// Uniform random live node. Requires at least one live node.
  NodeId sample_live(Rng& rng) const;

  /// Uniform random live node different from `self` (which may itself be
  /// dead). Requires at least one such node; returns invalid() when the
  /// only live node is `self`. The rejection loop is bounded: after
  /// kMaxRejections collisions with `self` it switches to an exact O(1)
  /// skip-one draw, so the call can never spin regardless of the live-set
  /// shape.
  NodeId sample_live_other(NodeId self, Rng& rng) const;

  /// Rejection budget of sample_live_other before the deterministic
  /// fallback. With >= 2 live nodes a collision has probability <= 1/2,
  /// so the fallback fires with probability <= 2^-64 per call — the
  /// goldens pinned against the unbounded loop are unaffected.
  static constexpr int kMaxRejections = 64;

private:
  static constexpr std::uint32_t kDead = static_cast<std::uint32_t>(-1);

  std::vector<NodeId> live_;            // compact list of live ids
  std::vector<std::uint32_t> position_;  // id -> index in live_, or kDead
};

}  // namespace gossip::overlay
