// Peer selection — the GETNEIGHBOR() of the paper's generic scheme
// (fig. 1). The aggregation protocol is written against this interface so
// the same protocol code runs over a static graph, the live complete
// graph, or the NEWSCAST dynamic view (src/membership).
#pragma once

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "overlay/graph.hpp"
#include "overlay/population.hpp"

namespace gossip::overlay {

/// Strategy for choosing the exchange partner of a node. Implementations
/// may return a crashed node — that is the point: the caller discovers the
/// crash through a timed-out exchange, exactly as in §4.2.
class PeerSampler {
public:
  virtual ~PeerSampler() = default;
  PeerSampler() = default;
  PeerSampler(const PeerSampler&) = delete;
  PeerSampler& operator=(const PeerSampler&) = delete;

  /// Uniform random neighbor of `from`, or invalid() if it has none.
  virtual NodeId sample(NodeId from, Rng& rng) = 0;
};

/// Uniform choice among a static graph's out-neighbors.
class GraphPeerSampler final : public PeerSampler {
public:
  /// The graph must outlive the sampler.
  explicit GraphPeerSampler(const Graph& graph) : graph_(&graph) {}

  NodeId sample(NodeId from, Rng& rng) override {
    const auto ns = graph_->neighbors(from);
    if (ns.empty()) return NodeId::invalid();
    return ns[rng.below(ns.size())];
  }

private:
  const Graph* graph_;
};

/// The paper's "Complete" topology at scale: every node knows every other
/// *current* node, so sampling is uniform over the live population
/// (never materializes O(n²) edges).
class CompletePeerSampler final : public PeerSampler {
public:
  /// The population must outlive the sampler.
  explicit CompletePeerSampler(const Population& population)
      : population_(&population) {}

  NodeId sample(NodeId from, Rng& rng) override {
    return population_->sample_live_other(from, rng);
  }

private:
  const Population* population_;
};

}  // namespace gossip::overlay
