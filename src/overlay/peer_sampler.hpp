// Peer selection — the GETNEIGHBOR() of the paper's generic scheme
// (fig. 1). The aggregation protocol is written against this seam so the
// same protocol code runs over a static graph, the live complete graph,
// or the NEWSCAST dynamic view (src/membership).
//
// The samplers are deliberately *not* a virtual hierarchy: the sample()
// call happens once per node per cycle — the single hottest call site of
// every simulation — so the drivers dispatch over the concrete types once
// per cycle (std::variant in cycle_sim / push_sum) and the RNG plus table
// lookups inline into the aggregation loop. Implementations may return a
// crashed node — that is the point: the caller discovers the crash
// through a timed-out exchange, exactly as in §4.2.
#pragma once

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "overlay/graph.hpp"
#include "overlay/population.hpp"

namespace gossip::overlay {

/// Uniform choice among a static graph's out-neighbors.
class GraphPeerSampler final {
public:
  /// The graph must outlive the sampler.
  explicit GraphPeerSampler(const Graph& graph) : graph_(&graph) {}

  NodeId sample(NodeId from, Rng& rng) {
    const auto ns = graph_->neighbors(from);
    if (ns.empty()) return NodeId::invalid();
    return ns[rng.below(ns.size())];
  }

private:
  const Graph* graph_;
};

/// The paper's "Complete" topology at scale: every node knows every other
/// *current* node, so sampling is uniform over the live population
/// (never materializes O(n²) edges).
class CompletePeerSampler final {
public:
  /// The population must outlive the sampler.
  explicit CompletePeerSampler(const Population& population)
      : population_(&population) {}

  NodeId sample(NodeId from, Rng& rng) {
    return population_->sample_live_other(from, rng);
  }

private:
  const Population* population_;
};

}  // namespace gossip::overlay
