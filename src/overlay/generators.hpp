// Generators for every static topology in the paper's §4.4 study:
// complete, random k-out ("random" in the paper: each node's neighbor set
// is a random sample of the peers), ring lattice, Watts–Strogatz(β) and
// Barabási–Albert preferential attachment.
//
// All generators are deterministic given (parameters, Rng seed).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "overlay/graph.hpp"

namespace gossip::overlay {

/// Complete graph on n nodes (materialized; use CompletePeerSampler for
/// large n instead — the paper's 10⁵-node "Complete" runs never build
/// the O(n²) edge set).
Graph complete_graph(std::uint32_t n);

/// The paper's "Random" topology: every node's neighbor set is filled
/// with k distinct random peers (directed k-out view). n > k required.
Graph random_k_out(std::uint32_t n, std::uint32_t k, Rng& rng);

/// Regular ring lattice: node i is linked to its k/2 nearest neighbors on
/// each side (k even, k < n). This is the Watts–Strogatz β = 0 case.
Graph ring_lattice(std::uint32_t n, std::uint32_t k);

/// Watts–Strogatz small world: ring lattice with each lattice edge's far
/// endpoint rewired with probability beta to a uniform random node
/// (avoiding self-loops and duplicates; a rewire that cannot find a legal
/// target after bounded retries keeps the original edge).
/// beta = 0 reproduces ring_lattice, beta = 1 rewires every edge.
Graph watts_strogatz(std::uint32_t n, std::uint32_t k, double beta, Rng& rng);

/// Barabási–Albert preferential attachment: new nodes arrive one at a
/// time and attach m edges to existing nodes chosen with probability
/// proportional to degree. Seeded with an (m+1)-clique. Mean degree ≈ 2m,
/// so m = 10 matches the paper's ⟨k⟩ = 20 topologies.
Graph barabasi_albert(std::uint32_t n, std::uint32_t m, Rng& rng);

}  // namespace gossip::overlay
