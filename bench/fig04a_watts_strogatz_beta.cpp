// Figure 4(a): convergence factor of AVERAGE on Watts–Strogatz overlays
// as a function of the rewiring probability β.
//
// Expected shape: monotone improvement from ≈0.8 at β=0 toward the
// random-graph factor ≈0.3 at β=1, with no sharp phase transition.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 4a",
               "convergence factor vs Watts-Strogatz beta",
               bench::scale_note(s, "N=1e5, 50 reps, 20-cycle factor"));

  Table table({"beta", "factor_mean", "factor_min", "factor_max"});
  // The whole beta sweep fans out in one batch: 21 points x reps jobs.
  constexpr std::size_t kPoints = 21;
  ParallelRunner runner(bench::runner_threads_for(kPoints * s.reps));
  const auto factors = runner.map_grid(
      kPoints, s.reps, [&](std::size_t bi, std::size_t rep) {
        SimConfig cfg;
        cfg.nodes = s.nodes;
        cfg.cycles = 20;
        cfg.topology = TopologyConfig::watts_strogatz(20, bi / 20.0);
        const AverageRun run = run_average_peak(
            cfg, failure::NoFailures{}, rep_seed(s.seed, 41 * 100 + bi, rep));
        return run.tracker.mean_factor(20);
      });
  for (std::size_t bi = 0; bi < kPoints; ++bi) {
    stats::RunningStats factor;
    for (std::uint64_t rep = 0; rep < s.reps; ++rep) {
      factor.add(factors[bi * s.reps + rep]);
    }
    table.add_row({fmt(bi / 20.0, 2), fmt(factor.mean()), fmt(factor.min()),
                   fmt(factor.max())});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig04a");

  std::cout << "\npaper-expects: smooth monotone drop from ~0.8 (beta=0) "
               "toward ~0.3 (beta=1), no sharp transition\n";
  return 0;
}
