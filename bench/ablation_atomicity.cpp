// Ablation: exchange atomicity in the event-driven protocol.
//
// The paper's fig. 1 pseudocode reads as two independent threads, but the
// exchange must be atomic per node: if a node serves an incoming push
// while its own push is in flight, the reply it later applies pairs with
// a stale committed value and the global sum drifts. This harness runs
// the identical workload with the guard on and off and reports the final
// mean estimate (true average = 1) — the "off" column's systematic error
// is why the guard exists (and why our threaded runtime sends Busy
// NACKs).
#include "bench_common.hpp"
#include "proto/world.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/1000, /*def_reps=*/5,
                              /*paper_nodes=*/1000, /*paper_reps=*/20);
  print_banner(std::cout, "Ablation",
               "exchange atomicity on/off in the event-driven stack",
               bench::scale_note(s, "not a paper figure; design ablation"));

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"atomic", "mean_final", "mean_err", "worst_rep_err"});
  for (const bool atomic : {true, false}) {
    // Each rep owns a whole event-driven world; fan them across threads.
    const auto rep_errors = runner.map(s.reps, [&](std::size_t rep) {
      proto::WorldConfig cfg;
      cfg.nodes = s.nodes;
      cfg.seed = rep_seed(s.seed, 90 + (atomic ? 1 : 0), rep);
      cfg.protocol.atomic_exchanges = atomic;
      proto::World world(cfg);
      world.start();
      world.run_cycles(25);
      return std::abs(world.estimate_summary().mean - 1.0);
    });
    stats::RunningStats err;
    for (double e : rep_errors) err.add(e);
    table.add_row({atomic ? "on" : "off", fmt(1.0 + err.mean(), 5),
                   fmt_sci(err.mean(), 2), fmt_sci(err.max(), 2)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("ablation_atomicity");
  std::cout << "\nexpected: 'on' conserves the mean to ~1e-7 (residual = "
               "exchanges in flight at snapshot time); 'off' drifts by "
               "percents.\n";
  return 0;
}
