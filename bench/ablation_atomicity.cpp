// Thin wrapper: this binary is the registered "ablation_atomicity" scenario of the
// declarative experiment layer (src/experiment/registry.cpp) and is
// equivalent to `gossip_run --scenario ablation_atomicity`. The series it prints is
// pinned bit-identical to the pre-redesign implementation by
// tests/scenario_registry_test.cpp.
#include "experiment/registry.hpp"

int main() { return gossip::experiment::scenario_main("ablation_atomicity"); }
