// Baseline comparison: push–pull anti-entropy (this paper) vs push-sum
// (Kempe, Dobra, Gehrke — the §8 related work). Same overlay, same peak
// workload; reports the per-cycle variance convergence factor and the
// sensitivity of each protocol's *mean* estimate to message loss.
//
// Expected: push–pull converges faster per cycle (≈0.30 vs ≈0.55). Under
// message loss both protocols drift on this worst-case peak workload —
// push-sum because a lost push destroys (sum, weight) chunks whose s:w
// ratio is extreme in the early cycles, push–pull through the §7.2
// response asymmetry — and push-sum drifts *more* here, on top of
// destroying the conserved totals outright. (With homogeneous values
// push-sum's drift vanishes; see push_sum_test.cpp.)
#include "bench_common.hpp"
#include "experiment/push_sum.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Baseline",
               "push-pull (this paper) vs push-sum (Kempe et al.)",
               bench::scale_note(s, "related-work baseline, not a figure"));

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"loss", "pp_factor", "ps_factor", "pp_mean_drift",
               "ps_mean_drift"});
  for (double loss : {0.0, 0.1, 0.2, 0.4}) {
    // One job = one rep of both protocols (they share nothing).
    struct RepResult {
      double pp_factor, pp_drift, ps_factor, ps_drift;
    };
    const auto results = runner.map(s.reps, [&](std::size_t rep) {
      SimConfig pp;
      pp.nodes = s.nodes;
      pp.cycles = 30;
      pp.topology = TopologyConfig::random_k_out(20);
      pp.comm = failure::CommFailureModel::message_loss(loss);
      const auto run = run_average_peak(
          pp, failure::NoFailures{},
          rep_seed(s.seed, 200 + static_cast<std::uint64_t>(loss * 10), rep));

      PushSumConfig ps;
      ps.nodes = s.nodes;
      ps.cycles = 30;
      ps.topology = TopologyConfig::random_k_out(20);
      ps.p_message_loss = loss;
      PushSumSimulation sim(
          ps, Rng(rep_seed(s.seed, 300 + static_cast<std::uint64_t>(loss * 10),
                           rep)));
      sim.init_scalar([&s](NodeId id) {
        return id.value() == 0 ? static_cast<double>(s.nodes) : 0.0;
      });
      sim.run();
      return RepResult{run.tracker.mean_factor(20),
                       std::abs(run.per_cycle.back().mean() - 1.0),
                       sim.tracker().mean_factor(20),
                       std::abs(stats::summarize(sim.estimates()).mean - 1.0)};
    });
    stats::RunningStats pp_factor, ps_factor, pp_drift, ps_drift;
    for (const RepResult& r : results) {
      pp_factor.add(r.pp_factor);
      pp_drift.add(r.pp_drift);
      ps_factor.add(r.ps_factor);
      ps_drift.add(r.ps_drift);
    }
    table.add_row({fmt(loss, 1), fmt(pp_factor.mean()),
                   fmt(ps_factor.mean()), fmt_sci(pp_drift.mean(), 2),
                   fmt_sci(ps_drift.mean(), 2)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("baseline_push_sum");
  std::cout << "\nexpected: pp_factor ~0.30 < ps_factor ~0.55 (push-pull "
               "converges ~2x faster per cycle);\nboth drift under loss on "
               "the peak workload, push-sum more (lost pushes carry\n"
               "extreme s:w ratios early on) — and push-sum also destroys "
               "the conserved totals.\n";
  return 0;
}
