// Thin wrapper: this binary is the registered "baseline_push_sum" scenario of the
// declarative experiment layer (src/experiment/registry.cpp) and is
// equivalent to `gossip_run --scenario baseline_push_sum`. The series it prints is
// pinned bit-identical to the pre-redesign implementation by
// tests/scenario_registry_test.cpp.
#include "experiment/registry.hpp"

int main() { return gossip::experiment::scenario_main("baseline_push_sum"); }
