// Micro-benchmarks (google-benchmark) for the library's hot kernels: the
// UPDATE functions, the sparse COUNT merge, the NEWSCAST cache merge, RNG
// primitives, and whole-simulation throughput. Not paper figures — these
// quantify the substrate so regressions in the simulator itself are
// visible.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/count.hpp"
#include "core/update.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast_cache.hpp"

namespace {

using namespace gossip;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(100003));
  }
}
BENCHMARK(BM_RngBelow);

void BM_AverageUpdate(benchmark::State& state) {
  Rng rng(3);
  double a = rng.uniform(), b = rng.uniform();
  for (auto _ : state) {
    a = core::AverageUpdate::apply(a, b);
    benchmark::DoNotOptimize(a);
    b += 1.0;  // keep values moving
  }
}
BENCHMARK(BM_AverageUpdate);

void BM_CountMapMerge(benchmark::State& state) {
  const auto leaders = static_cast<std::uint32_t>(state.range(0));
  core::CountMap a, b;
  for (std::uint32_t l = 0; l < leaders; ++l) {
    auto& side = (l % 2 == 0) ? a : b;
    side = core::CountMap::merge(side, core::CountMap::leader(NodeId(l)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CountMap::merge(a, b));
  }
  state.SetItemsProcessed(state.iterations() * leaders);
}
BENCHMARK(BM_CountMapMerge)->Arg(1)->Arg(10)->Arg(50);

void BM_NewscastCacheMerge(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  membership::NewscastCache mine(c), theirs(c);
  for (std::size_t i = 0; i < c; ++i) {
    mine.insert({NodeId(static_cast<std::uint32_t>(i)), rng()});
    theirs.insert({NodeId(static_cast<std::uint32_t>(i + c / 2)), rng()});
  }
  std::uint64_t now = 1;
  for (auto _ : state) {
    mine.merge(theirs.entries(), {NodeId(9999), now++}, NodeId(0));
  }
  state.SetItemsProcessed(state.iterations() * c);
}
BENCHMARK(BM_NewscastCacheMerge)->Arg(10)->Arg(30)->Arg(50);

void BM_CycleSimAverage(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto spec = experiment::ScenarioSpec::average_peak("micro", n, 10)
                  .with_topology(experiment::TopologyConfig::random_k_out(20))
                  .with_engine(experiment::EngineKind::kSerial);
  experiment::Engine engine;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    const auto run = engine.run_single(spec, seed++);
    benchmark::DoNotOptimize(run.per_cycle.back().mean());
  }
  // exchanges per second: n initiations per cycle.
  state.SetItemsProcessed(state.iterations() * n * spec.cycles);
}
BENCHMARK(BM_CycleSimAverage)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CycleSimNewscastCount(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto spec = experiment::ScenarioSpec::count("micro", n, 10)
                  .with_topology(experiment::TopologyConfig::newscast(30))
                  .with_engine(experiment::EngineKind::kSerial);
  experiment::Engine engine;
  std::uint64_t seed = 6;
  for (auto _ : state) {
    const auto run = engine.run_single(spec, seed++);
    benchmark::DoNotOptimize(run.sizes.mean);
  }
  state.SetItemsProcessed(state.iterations() * n * spec.cycles);
}
BENCHMARK(BM_CycleSimNewscastCount)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
