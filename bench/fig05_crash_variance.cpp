// Figure 5: effect of node crashes on AVERAGE — the variance of the mean
// estimate at cycle 20, normalized by the initial variance, as a function
// of the per-cycle crash proportion P_f, against the Theorem 1 prediction
// (eq. 2 with ρ = 1/(2√e)).
//
// Paper setup: N = 10^5, peak distribution, complete + newscast overlays,
// 100 repetitions, P_f ∈ [0, 0.3]. Expected shape: empirical points track
// the prediction, growing superlinearly in P_f. NOTE the prediction is
// evaluated at the N actually run — eq. 2 scales as 1/N, so scaled-down
// runs sit proportionally higher.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/40,
                              /*paper_nodes=*/100000, /*paper_reps=*/100);
  print_banner(std::cout, "Figure 5",
               "Var(mu_20)/E(sigma0^2) vs crash rate P_f, with Theorem 1",
               bench::scale_note(s, "N=1e5, 100 reps, Pf in [0,0.3]"));

  constexpr std::uint32_t kCycles = 20;
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"Pf", "complete", "newscast", "predicted"});
  for (int pi = 0; pi <= 6; ++pi) {
    const double pf = pi * 0.05;
    std::vector<std::string> row{fmt(pf, 2)};
    double sigma0_sq = theory::peak_distribution_variance(
        s.nodes, static_cast<double>(s.nodes));
    std::uint64_t topo_index = 0;
    for (const auto topo :
         {TopologyConfig::complete(), TopologyConfig::newscast(30)}) {
      ++topo_index;
      SimConfig cfg;
      cfg.nodes = s.nodes;
      cfg.cycles = kCycles;
      cfg.topology = topo;
      stats::RunningStats mu_final;
      for (const AverageRun& run : run_average_peak_reps(
               runner, cfg, failure::ProportionalCrash(pf), s.seed,
               51 * 100 + pi * 10 + topo_index, s.reps)) {
        mu_final.add(run.per_cycle.back().mean());
        sigma0_sq = run.per_cycle.front().variance();
      }
      row.push_back(fmt_sci(mu_final.variance() / sigma0_sq, 3));
    }
    const double predicted =
        pf == 0.0 ? 0.0
                  : theory::mu_variance(pf, s.nodes, sigma0_sq,
                                        theory::push_pull_factor(), kCycles) /
                        sigma0_sq;
    row.push_back(fmt_sci(predicted, 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig05");

  std::cout << "\npaper-expects: empirical ~= predicted (within Monte-Carlo "
               "noise of reps), growing superlinearly with Pf; at paper "
               "scale Pf=0.3 gives ~1.6e-5\n";
  return 0;
}
