// Figure 7(b): COUNT network-size estimation as a function of the
// fraction of messages lost (requests AND responses independently).
//
// Paper setup: N = 10^5, NEWSCAST(c=30), 50 experiments, loss ∈ [0, 0.5];
// the plot shows, per experiment, the max and min estimate over nodes
// (log-y, 100..1e9). Expected shape: modest loss keeps estimates
// reasonable; by ~30-50% loss the min/max spread spans orders of
// magnitude (response loss changes the global sum).
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/10,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 7b",
               "COUNT min/max estimate vs message loss fraction",
               bench::scale_note(s, "N=1e5, 50 reps, loss in [0,0.5]"));

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"loss", "min_median", "max_median", "min_lo", "max_hi"});
  for (int li = 0; li <= 10; ++li) {
    const double loss = li * 0.05;
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.topology = TopologyConfig::newscast(30);
    cfg.comm = failure::CommFailureModel::message_loss(loss);
    std::vector<double> mins, maxs;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::NoFailures{}, s.seed,
                        72 * 100 + li, s.reps)) {
      mins.push_back(run.sizes.min);
      if (std::isfinite(run.sizes.max)) maxs.push_back(run.sizes.max);
    }
    table.add_row({fmt(loss, 2), bench::fmt_size(bench::median_of(mins)),
                   bench::fmt_size(bench::median_of(maxs)),
                   bench::fmt_size(stats::summarize(mins).min),
                   maxs.empty() ? "inf"
                                : bench::fmt_size(stats::summarize(maxs).max)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig07b");

  std::cout << "\npaper-expects: near-exact at loss<=0.1, spread exploding "
               "by orders of magnitude as loss -> 0.4-0.5\n";
  return 0;
}
