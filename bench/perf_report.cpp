// Performance report for the cycle-driven simulator and the parallel
// experiment engine, driven through the Engine facade.
//
// Times the multi-repetition AVERAGE-on-NEWSCAST workload (the §7
// configuration every robustness figure uses) with engine=serial and
// engine=rep_parallel, verifies the merged results are bit-identical,
// then times one repetition under engine=intra_rep at GOSSIP_SHARDS
// against its 1-shard reference. Emits BENCH_cyclesim.json — the
// machine-readable perf trajectory future optimization PRs diff against
// — including a provenance block (git sha, scale mode, threads/shards,
// spec hash) so committed numbers are traceable to their configuration.
//
// Knobs: GOSSIP_N / GOSSIP_REPS / GOSSIP_SEED / GOSSIP_THREADS /
// GOSSIP_SHARDS as everywhere (see EXPERIMENTS.md); GOSSIP_JSON
// overrides the output path.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "experiment/emit.hpp"
#include "experiment/engine.hpp"
#include "experiment/intra_rep.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/registry.hpp"
#include "experiment/scale.hpp"
#include "experiment/spec.hpp"
#include "experiment/table.hpp"
#include "failure/failure_plan.hpp"

namespace {

using namespace gossip;
using namespace gossip::experiment;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Bit-level equality so a run that legitimately diverges to inf/NaN
/// (COUNT under loss) still compares — `NaN == NaN` would read as a
/// divergence.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool identical(const std::vector<RunResult>& a,
               const std::vector<RunResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].per_cycle.size() != b[r].per_cycle.size()) return false;
    for (std::size_t c = 0; c < a[r].per_cycle.size(); ++c) {
      const auto& x = a[r].per_cycle[c];
      const auto& y = b[r].per_cycle[c];
      if (x.count() != y.count() || !same_bits(x.mean(), y.mean()) ||
          !same_bits(x.variance(), y.variance()) ||
          !same_bits(x.min(), y.min()) || !same_bits(x.max(), y.max())) {
        return false;
      }
    }
    if (a[r].tracker.variances() != b[r].tracker.variances()) return false;
    // The size-estimate summary carries the COUNT output (instance
    // slots beyond slot 0); per-cycle stats alone would miss a
    // divergence confined to those lanes.
    const auto& sa = a[r].sizes;
    const auto& sb = b[r].sizes;
    if (a[r].participants != b[r].participants || sa.count != sb.count ||
        !same_bits(sa.mean, sb.mean) ||
        !same_bits(sa.variance, sb.variance) ||
        !same_bits(sa.min, sb.min) || !same_bits(sa.max, sb.max) ||
        !same_bits(sa.median, sb.median)) {
      return false;
    }
  }
  return true;
}

int run() {
  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/16,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Perf report",
               "serial vs parallel repetition throughput, cycle driver",
               scale_note(s, "substrate benchmark, not a figure"));

  ScenarioSpec spec = ScenarioSpec::average_peak("perf_report", s.nodes, 30)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_reps(s.reps)
                          .with_seed(s.seed)
                          .with_seed_point(0);

  const unsigned threads = runner_threads();
  const auto total_cycles =
      static_cast<double>(s.reps) * static_cast<double>(spec.cycles);
  // Per cycle: every node initiates one newscast exchange and one
  // aggregation exchange.
  const double total_exchanges = total_cycles * 2.0 * spec.nodes;

  Engine serial({EngineKind::kSerial});
  auto t0 = std::chrono::steady_clock::now();
  const auto serial_runs = serial.run_point(spec, 0);
  const double serial_s = seconds_since(t0);

  Engine parallel({EngineKind::kRepParallel, threads});
  t0 = std::chrono::steady_clock::now();
  const auto parallel_runs = parallel.run_point(spec, 0);
  const double parallel_s = seconds_since(t0);

  const bool bit_identical = identical(serial_runs, parallel_runs);
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  // ---- intra-rep mode: one repetition, cycles domain-decomposed --------
  //
  // The complementary axis: instead of fanning independent repetitions
  // out (useless when there is only one giant-N rep), one repetition's
  // cycles are split over GOSSIP_SHARDS node domains executed across the
  // runner's threads. The sharded run must be bit-identical to the
  // 1-shard/1-thread reference — shard count is a performance knob,
  // never a semantic one.
  const unsigned shards = runner_shards();
  ScenarioSpec intra_spec = spec;
  intra_spec.reps = 1;
  intra_spec.engine = EngineKind::kIntraRep;
  intra_spec.seed = s.seed;  // run_single consumes the seed raw

  Engine intra_serial({EngineKind::kIntraRep, 1, 1});
  t0 = std::chrono::steady_clock::now();
  const RunResult intra_ref = intra_serial.run_single(intra_spec, s.seed);
  const double intra_serial_s = seconds_since(t0);

  Engine intra_pool({EngineKind::kIntraRep, threads, shards});
  t0 = std::chrono::steady_clock::now();
  const RunResult intra_sharded = intra_pool.run_single(intra_spec, s.seed);
  const double intra_sharded_s = seconds_since(t0);

  const bool intra_identical = identical({intra_ref}, {intra_sharded});
  const double intra_speedup =
      intra_sharded_s > 0.0 ? intra_serial_s / intra_sharded_s : 0.0;

  // ---- intra-rep COUNT: the fig. 6/8 workload on the sharded engine ----
  //
  // One giant COUNT repetition with 8 concurrent instances — the
  // robustness workload the engine historically rejected. Checked
  // bit-identical against its 1-shard reference like the AVERAGE leg.
  ScenarioSpec count_spec =
      ScenarioSpec::count("perf_report_count", s.nodes, 30, 8)
          .with_topology(TopologyConfig::newscast(30))
          .with_seed(s.seed)
          .with_seed_point(0);
  count_spec.engine = EngineKind::kIntraRep;

  t0 = std::chrono::steady_clock::now();
  const RunResult count_ref = intra_serial.run_single(count_spec, s.seed);
  const double count_serial_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const RunResult count_sharded = intra_pool.run_single(count_spec, s.seed);
  const double count_sharded_s = seconds_since(t0);
  const bool count_identical = identical({count_ref}, {count_sharded});
  const double count_speedup =
      count_sharded_s > 0.0 ? count_serial_s / count_sharded_s : 0.0;

  // ---- continuous-service leg: lane throughput + snapshot staleness ----
  //
  // (a) The flat [node x instance] COUNT path at service traffic width
  // (10^3+ concurrent query lanes): lane_updates_per_sec is the number
  // future lane-path optimizations diff against. (b) An epoch-pipelined
  // AVERAGE run under linear drift: every cycle serves a query from the
  // snapshot store, and the committed numbers carry the query rate and
  // the p99 snapshot age against the spec's staleness bound.
  const std::uint32_t lanes_t = std::min(s.nodes, 2000u);
  ScenarioSpec lanes_spec =
      ScenarioSpec::count("perf_report_lanes", s.nodes, 30, lanes_t)
          .with_topology(TopologyConfig::newscast(30))
          .with_seed(s.seed)
          .with_seed_point(0);
  const RunResult lanes_run = serial.run_single(lanes_spec, s.seed);
  const double lane_updates_per_sec =
      lanes_run.elapsed_seconds > 0.0
          ? static_cast<double>(s.nodes) * lanes_t * lanes_spec.cycles /
                lanes_run.elapsed_seconds
          : 0.0;

  constexpr std::uint32_t kStalenessBound = 12;
  ScenarioSpec service_spec =
      ScenarioSpec::average_peak("perf_report_service", s.nodes, 40)
          .with_topology(TopologyConfig::newscast(30))
          .with_seed(s.seed)
          .with_seed_point(0)
          .with_drift(DriftSpec::linear(0.01))
          .with_service(ServiceSpec::pipelined(10, kStalenessBound));
  service_spec.init = InitKind::kUniform;
  const RunResult service_run = serial.run_single(service_spec, s.seed);
  const std::uint32_t p99_staleness =
      staleness_percentile(service_run.staleness, 99.0);
  const bool stale_ok = p99_staleness <= kStalenessBound;
  const double queries_per_sec =
      service_run.elapsed_seconds > 0.0
          ? static_cast<double>(service_run.staleness.size()) /
                service_run.elapsed_seconds
          : 0.0;

  // ---- serial-phase fraction: the Amdahl residue of the intra-rep cycle
  //
  // With matching and record_stats parallelized, the only serial work
  // left per cycle is O(shards + segments) glue (prefix sums, the
  // fixed-shape reduction folds). The fraction of wall time spent
  // outside ParallelRunner batches is the ceiling on intra-rep scaling,
  // so the committed JSON tracks it.
  IntraRepPhaseProfile phase_profile;
  {
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = spec.cycles;
    cfg.topology = TopologyConfig::newscast(30);
    IntraRepSimulation sim(cfg, s.seed, shards);
    sim.init_peak(static_cast<double>(s.nodes));
    sim.set_phase_profile(&phase_profile);
    ParallelRunner profile_pool(std::min(threads, shards));
    const failure::NoFailures no_failures;
    sim.run(no_failures, profile_pool);
  }
  const double serial_phase_fraction = phase_profile.serial_fraction();

  // ---- match-rounds sweep: convergence factor vs rounds ----------------
  //
  // The factor the matched-cycle model achieves per R against the serial
  // driver's reference (≈ 1/(2√e) ≈ 0.30 on this workload). The R=3
  // acceptance bound is 1.2× serial; the committed numbers land below
  // 1.0×.
  const double serial_factor =
      serial_runs.front().tracker.mean_factor(spec.cycles);
  struct RoundsPoint {
    std::uint32_t rounds;
    double factor;
    double seconds;
  };
  std::vector<RoundsPoint> rounds_sweep;
  for (std::uint32_t rounds : {1u, 2u, 3u}) {
    ScenarioSpec rounds_spec = intra_spec;
    rounds_spec.match_rounds = rounds;
    t0 = std::chrono::steady_clock::now();
    const RunResult run = intra_pool.run_single(rounds_spec, s.seed);
    rounds_sweep.push_back({rounds, run.tracker.mean_factor(spec.cycles),
                            seconds_since(t0)});
  }

  // ---- deployment-runtime leg: the live executor at N = 10^3 -----------
  //
  // The same AVERAGE-on-NEWSCAST workload on the deployment runtime
  // (loopback transport, zero loss, real worker threads and real wire
  // encode/decode on every hop): exchanges/sec is the number future
  // executor optimizations diff against, and exact global sum
  // conservation doubles as a live invariant check in every report.
  const std::uint32_t rt_nodes = std::min(s.nodes, 1000u);
  ScenarioSpec rt_spec =
      ScenarioSpec::average_peak("perf_report_runtime", rt_nodes, 20)
          .with_topology(TopologyConfig::newscast(30))
          .with_driver(DriverKind::kRuntime)
          .with_seed(s.seed)
          .with_seed_point(0);
  rt_spec.runtime.workers = threads;
  const RunResult rt_run = serial.run_single(rt_spec, s.seed);
  const auto& rt_c = rt_run.runtime_counters;
  const double rt_exchanges_per_sec =
      rt_run.elapsed_seconds > 0.0
          ? static_cast<double>(rt_c.exchanges_completed) /
                rt_run.elapsed_seconds
          : 0.0;
  const double rt_bytes_per_exchange =
      rt_c.exchanges_completed > 0
          ? static_cast<double>(rt_c.bytes_encoded) /
                static_cast<double>(rt_c.exchanges_completed)
          : 0.0;
  const bool rt_conserved =
      std::fabs(rt_run.runtime_sum_final - rt_run.runtime_sum_initial) <=
      1e-9 * static_cast<double>(rt_nodes);

  Table table({"mode", "threads", "seconds", "cycles/sec", "exchanges/sec"});
  table.add_row({"serial", "1", fmt(serial_s, 3),
                 fmt(total_cycles / serial_s, 1),
                 fmt_sci(total_exchanges / serial_s, 3)});
  table.add_row({"parallel", std::to_string(threads), fmt(parallel_s, 3),
                 fmt(total_cycles / parallel_s, 1),
                 fmt_sci(total_exchanges / parallel_s, 3)});
  table.print(std::cout);

  std::cout << "\nspeedup: " << fmt(speedup, 2) << "x on " << threads
            << " thread(s); parallel results "
            << (bit_identical ? "bit-identical" : "DIVERGED (BUG)")
            << " vs serial\n";

  std::cout << "intra-rep: 1 rep, " << shards << " shard(s) on " << threads
            << " thread(s): " << fmt(intra_serial_s, 3) << "s -> "
            << fmt(intra_sharded_s, 3) << "s (" << fmt(intra_speedup, 2)
            << "x); sharded results "
            << (intra_identical ? "bit-identical" : "DIVERGED (BUG)")
            << " vs 1-shard reference\n";

  std::cout << "intra-rep COUNT (t=8): " << fmt(count_serial_s, 3)
            << "s -> " << fmt(count_sharded_s, 3) << "s ("
            << fmt(count_speedup, 2) << "x); sharded results "
            << (count_identical ? "bit-identical" : "DIVERGED (BUG)")
            << " vs 1-shard reference\n";

  std::cout << "intra-rep serial-phase fraction: "
            << fmt(serial_phase_fraction, 4) << " (time outside parallel "
            << "batches over one AVERAGE epoch; in-batch "
            << fmt(phase_profile.parallel_seconds, 3) << "s of "
            << fmt(phase_profile.total_seconds, 3) << "s)\n";

  std::cout << "service lanes (t=" << lanes_t << "): "
            << fmt(lanes_run.elapsed_seconds, 3) << "s, "
            << fmt_sci(lane_updates_per_sec, 3)
            << " lane-updates/s; pipelined queries: "
            << service_run.staleness.size() << " at "
            << fmt(queries_per_sec, 1) << "/s, p99 staleness "
            << p99_staleness << (stale_ok ? " <= " : " EXCEEDS ")
            << "bound " << kStalenessBound << "\n";

  std::cout << "deployment runtime (N=" << rt_nodes << ", "
            << rt_spec.runtime.workers << " worker(s)): "
            << fmt(rt_run.elapsed_seconds, 3) << "s, "
            << fmt_sci(rt_exchanges_per_sec, 3) << " exchanges/s, "
            << fmt(rt_bytes_per_exchange, 1) << " B/exchange, sum "
            << (rt_conserved ? "conserved" : "NOT CONSERVED (BUG)") << "\n";

  std::cout << "match-rounds factor sweep (serial driver factor = "
            << fmt(serial_factor) << "):\n";
  for (const RoundsPoint& pt : rounds_sweep) {
    std::cout << "  R=" << pt.rounds << ": factor " << fmt(pt.factor)
              << " (" << fmt(pt.factor / serial_factor, 2)
              << "x serial) in " << fmt(pt.seconds, 3) << "s\n";
  }

  // Provenance: the parallel leg is the configuration whose numbers the
  // committed JSON carries.
  ScenarioResult provenance_carrier;
  provenance_carrier.spec = spec;
  provenance_carrier.engine = resolve_engine(
      spec, EngineOptions{EngineKind::kRepParallel, threads, shards});
  const Provenance prov = make_provenance(provenance_carrier, s.full);

  const std::string path =
      env_string("GOSSIP_JSON").value_or("BENCH_cyclesim.json");
  std::ofstream json(path);
  json << "{\n"
       << "  \"bench\": \"cyclesim\",\n"
       << "  \"workload\": \"average_peak_newscast_c30\",\n"
       << "  \"nodes\": " << spec.nodes << ",\n"
       << "  \"cycles\": " << spec.cycles << ",\n"
       << "  \"reps\": " << s.reps << ",\n"
       << "  \"seed\": " << s.seed << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_seconds\": " << fmt(serial_s, 6) << ",\n"
       << "  \"parallel_seconds\": " << fmt(parallel_s, 6) << ",\n"
       << "  \"speedup\": " << fmt(speedup, 4) << ",\n"
       << "  \"serial_cycles_per_sec\": " << fmt(total_cycles / serial_s, 2)
       << ",\n"
       << "  \"parallel_cycles_per_sec\": "
       << fmt(total_cycles / parallel_s, 2) << ",\n"
       << "  \"serial_exchanges_per_sec\": "
       << fmt(total_exchanges / serial_s, 1) << ",\n"
       << "  \"parallel_exchanges_per_sec\": "
       << fmt(total_exchanges / parallel_s, 1) << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"service\": {\n"
       << "    \"lanes\": " << lanes_t << ",\n"
       << "    \"lane_seconds\": " << fmt(lanes_run.elapsed_seconds, 6)
       << ",\n"
       << "    \"lane_updates_per_sec\": " << fmt(lane_updates_per_sec, 1)
       << ",\n"
       << "    \"queries_served\": " << service_run.staleness.size()
       << ",\n"
       << "    \"queries_per_sec\": " << fmt(queries_per_sec, 2) << ",\n"
       << "    \"epochs_published\": " << service_run.epochs_published
       << ",\n"
       << "    \"p99_staleness\": " << p99_staleness << ",\n"
       << "    \"staleness_bound\": " << kStalenessBound << ",\n"
       << "    \"stale_ok\": " << (stale_ok ? "true" : "false") << ",\n"
       << "    \"tracking_error_final\": "
       << fmt(service_run.tracking_error.empty()
                  ? 0.0
                  : service_run.tracking_error.back(),
              6)
       << "\n  },\n"
       << "  \"intra_rep\": {\n"
       << "    \"shards\": " << shards << ",\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"serial_seconds\": " << fmt(intra_serial_s, 6) << ",\n"
       << "    \"sharded_seconds\": " << fmt(intra_sharded_s, 6) << ",\n"
       << "    \"speedup\": " << fmt(intra_speedup, 4) << ",\n"
       << "    \"bit_identical\": " << (intra_identical ? "true" : "false")
       << ",\n"
       << "    \"count\": {\n"
       << "      \"instances\": 8,\n"
       << "      \"serial_seconds\": " << fmt(count_serial_s, 6) << ",\n"
       << "      \"sharded_seconds\": " << fmt(count_sharded_s, 6) << ",\n"
       << "      \"speedup\": " << fmt(count_speedup, 4) << ",\n"
       << "      \"bit_identical\": "
       << (count_identical ? "true" : "false") << "\n    },\n"
       << "    \"serial_phase_fraction\": "
       << fmt(serial_phase_fraction, 6) << ",\n"
       << "    \"serial_phase_seconds\": "
       << fmt(phase_profile.total_seconds - phase_profile.parallel_seconds,
              6)
       << ",\n"
       << "    \"serial_driver_factor\": " << fmt(serial_factor, 6)
       << ",\n"
       << "    \"rounds\": [\n";
  for (std::size_t ri = 0; ri < rounds_sweep.size(); ++ri) {
    const RoundsPoint& pt = rounds_sweep[ri];
    json << "      {\"rounds\": " << pt.rounds << ", \"factor\": "
         << fmt(pt.factor, 6) << ", \"factor_vs_serial\": "
         << fmt(pt.factor / serial_factor, 4) << ", \"seconds\": "
         << fmt(pt.seconds, 6) << "}"
         << (ri + 1 < rounds_sweep.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"runtime\": {\n"
       << "    \"nodes\": " << rt_nodes << ",\n"
       << "    \"workers\": " << rt_spec.runtime.workers << ",\n"
       << "    \"cycles\": " << rt_spec.cycles << ",\n"
       << "    \"seconds\": " << fmt(rt_run.elapsed_seconds, 6) << ",\n"
       << "    \"exchanges_completed\": " << rt_c.exchanges_completed
       << ",\n"
       << "    \"exchanges_per_sec\": " << fmt(rt_exchanges_per_sec, 1)
       << ",\n"
       << "    \"busy_nacks\": " << rt_c.busy_nacks << ",\n"
       << "    \"timeouts\": " << rt_c.timeouts << ",\n"
       << "    \"bytes_per_exchange\": " << fmt(rt_bytes_per_exchange, 2)
       << ",\n"
       << "    \"sum_conserved\": " << (rt_conserved ? "true" : "false")
       << "\n  },\n"
       << "  \"provenance\": ";
  // Indent the provenance block to match the hand-rolled layout.
  const std::string prov_text = provenance_json(prov, 2);
  for (std::size_t i = 0; i < prov_text.size(); ++i) {
    json << prov_text[i];
    if (prov_text[i] == '\n') json << "  ";
  }
  json << "\n}\n";
  json.close();
  if (!json) {
    std::cout << "ERROR: could not write " << path << '\n';
    return 1;
  }
  std::cout << "wrote " << path << '\n';

  return (bit_identical && intra_identical && count_identical &&
          rt_conserved)
             ? 0
             : 1;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const EnvError& e) {
    std::cerr << "gossip: " << e.what() << '\n';
    return 2;
  } catch (const SpecError& e) {
    std::cerr << "gossip: " << e.what() << '\n';
    return 2;
  }
}
