// Figure 7(a): convergence factor of COUNT as a function of the link
// failure probability P_d, against the theoretical upper bound
// ρ_d = e^(P_d − 1) (eq. 5).
//
// Paper setup: N = 10^5, NEWSCAST(c=30), 50 experiments. Expected shape:
// measured factor starts at ≈1/(2√e) < 1/e for P_d = 0, rises with P_d,
// stays below the bound, and the bound tightens as P_d → 1.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 7a",
               "COUNT convergence factor vs link failure P_d, with bound",
               bench::scale_note(s, "N=1e5, 50 reps, Pd in [0,0.9]"));

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"Pd", "factor_mean", "factor_min", "factor_max", "bound"});
  for (int pi = 0; pi <= 9; ++pi) {
    const double pd = pi * 0.1;
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.topology = TopologyConfig::newscast(30);
    cfg.comm = failure::CommFailureModel::link_failure(pd);
    stats::RunningStats factor;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::NoFailures{}, s.seed,
                        71 * 100 + pi, s.reps)) {
      factor.add(run.tracker.mean_factor(30));
    }
    table.add_row({fmt(pd, 1), fmt(factor.mean()), fmt(factor.min()),
                   fmt(factor.max()),
                   fmt(theory::link_failure_bound(pd))});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig07a");

  std::cout << "\npaper-expects: factor_mean <= bound everywhere, "
               "factor(0) ~ "
            << fmt(theory::push_pull_factor())
            << ", bound increasingly tight for larger Pd\n";
  return 0;
}
