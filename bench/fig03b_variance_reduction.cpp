// Figure 3(b): variance reduction σ²_i/σ²_0 (log-y) over 50 cycles at
// fixed network size, one curve per topology.
//
// Expected shape: straight lines on the log scale (constant per-cycle
// factor); random/complete/newscast/scale-free dive to ~1e-16 within
// ~30-40 cycles, the lattice family is ordered by β with W-S(0) barely
// moving.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/3,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 3b",
               "normalized variance vs cycle for 8 topologies",
               bench::scale_note(s, "N=1e5, 50 reps, 50 cycles"));

  struct Topo {
    const char* name;
    TopologyConfig cfg;
  };
  const std::vector<Topo> topologies{
      {"W-S(0.00)", TopologyConfig::watts_strogatz(20, 0.00)},
      {"W-S(0.25)", TopologyConfig::watts_strogatz(20, 0.25)},
      {"W-S(0.50)", TopologyConfig::watts_strogatz(20, 0.50)},
      {"W-S(0.75)", TopologyConfig::watts_strogatz(20, 0.75)},
      {"newscast", TopologyConfig::newscast(30)},
      {"scalefree", TopologyConfig::barabasi_albert(20)},
      {"random", TopologyConfig::random_k_out(20)},
      {"complete", TopologyConfig::complete()},
  };
  constexpr std::uint32_t kCycles = 50;
  constexpr double kFloor = 1e-30;

  // reduction[topology][cycle] averaged over reps (geometric mean would
  // match the log plot better; arithmetic over few reps is close enough
  // and matches the paper's averaging).
  std::vector<std::vector<stats::RunningStats>> reduction(
      topologies.size(), std::vector<stats::RunningStats>(kCycles + 1));
  // All topology x rep curves fan out in one batch; folding in job order
  // keeps the table bit-identical to the serial loops.
  ParallelRunner runner(bench::runner_threads_for(topologies.size() * s.reps));
  const auto curves = runner.map_grid(
      topologies.size(), s.reps, [&](std::size_t ti, std::size_t rep) {
        SimConfig cfg;
        cfg.nodes = s.nodes;
        cfg.cycles = kCycles;
        cfg.topology = topologies[ti].cfg;
        const AverageRun run = run_average_peak(
            cfg, failure::NoFailures{}, rep_seed(s.seed, 32 + ti, rep));
        return run.tracker.normalized(kFloor);
      });
  for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
    for (std::uint64_t rep = 0; rep < s.reps; ++rep) {
      const auto& norm = curves[ti * s.reps + rep];
      for (std::size_t c = 0; c < norm.size(); ++c) {
        reduction[ti][c].add(norm[c]);
      }
    }
  }

  std::vector<std::string> headers{"cycle"};
  for (const auto& t : topologies) headers.emplace_back(t.name);
  Table table(std::move(headers));
  for (std::uint32_t c = 0; c <= kCycles; c += 2) {
    std::vector<std::string> row{std::to_string(c)};
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      row.push_back(fmt_sci(reduction[ti][c].mean(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig03b");

  std::cout << "\npaper-expects: straight log-lines; random-family curves "
               "reach <=1e-16 by ~cycle 35, W-S(0) stays within ~1e-2\n";
  return 0;
}
