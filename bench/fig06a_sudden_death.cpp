// Figure 6(a): COUNT under "sudden death" — 50% of the nodes crash at
// once at cycle x of a 30-cycle epoch; x is swept along the x-axis.
//
// Paper setup: N = 10^5 on NEWSCAST(c=30), 50 experiments per x.
// Expected shape: death in the first few cycles scatters the estimate
// wildly (it can even become infinite if all mass dies); from x ≈ 10 the
// variance is already so small that the estimate stays pinned at the
// epoch-start size N (not N/2 — the epoch aggregates the starting
// population).
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/10,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 6a",
               "COUNT estimate vs cycle of 50% sudden death",
               bench::scale_note(s, "N=1e5, 50 reps, newscast c=30"));

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"death_cycle", "est_median", "est_lo", "est_hi", "inf_runs"});
  for (std::uint32_t x = 0; x <= 20; x += 2) {
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.topology = TopologyConfig::newscast(30);
    std::vector<double> means;
    int infinite = 0;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::SuddenDeath(x, 0.5), s.seed,
                        61 * 100 + x, s.reps)) {
      if (std::isfinite(run.sizes.mean)) {
        means.push_back(run.sizes.mean);
      } else {
        ++infinite;
      }
    }
    const auto sm = stats::summarize(means);
    table.add_row({std::to_string(x), bench::fmt_size(sm.median),
                   bench::fmt_size(sm.min), bench::fmt_size(sm.max),
                   std::to_string(infinite)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig06a");

  std::cout << "\npaper-expects: wide scatter (up to several x N, possibly "
               "infinite) for death at cycles 0-6, tight at N from ~cycle "
               "10 on; true epoch-start size = "
            << s.nodes << '\n';
  return 0;
}
