// Ablation: initial value distribution vs measured convergence factor.
//
// The paper runs everything on the *peak* distribution (one node holds
// all mass) because it is the worst case for robustness and the basis of
// COUNT. The convergence-factor theory (ρ = 1/(2√e)) is distribution-
// independent; this harness verifies that empirically by measuring the
// factor under four very different initial distributions on the same
// overlay.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Ablation",
               "convergence factor vs initial value distribution",
               bench::scale_note(s, "not a paper figure; design ablation"));

  struct Dist {
    const char* name;
    std::function<double(NodeId, Rng&)> value;
  };
  const std::vector<Dist> dists{
      {"peak", [&](NodeId id, Rng&) {
         return id.value() == 0 ? static_cast<double>(s.nodes) : 0.0;
       }},
      {"uniform", [](NodeId, Rng& r) { return r.uniform(0.0, 2.0); }},
      {"bimodal", [](NodeId id, Rng&) {
         return id.value() % 2 == 0 ? 0.0 : 2.0;
       }},
      {"exponential", [](NodeId, Rng& r) { return r.exponential(1.0); }},
  };

  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"distribution", "factor_mean", "factor_min", "factor_max"});
  for (std::size_t di = 0; di < dists.size(); ++di) {
    const auto factors = runner.map(s.reps, [&](std::size_t rep) {
      SimConfig cfg;
      cfg.nodes = s.nodes;
      cfg.cycles = 20;
      cfg.topology = TopologyConfig::random_k_out(20);
      Rng values_rng(rep_seed(s.seed, 97 + di, rep) ^ 0xabcdULL);
      CycleSimulation sim(cfg, Rng(rep_seed(s.seed, 97 + di, rep)));
      sim.init_scalar(
          [&](NodeId id) { return dists[di].value(id, values_rng); });
      sim.run(failure::NoFailures{});
      return sim.tracker().mean_factor(15);
    });
    stats::RunningStats factor;
    for (double f : factors) factor.add(f);
    table.add_row({dists[di].name, fmt(factor.mean()), fmt(factor.min()),
                   fmt(factor.max())});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("ablation_initial_distribution");
  std::cout << "\nexpected: all distributions near 1/(2*sqrt(e)) = "
            << fmt(theory::push_pull_factor())
            << " — the factor is workload-independent, so the paper's "
               "peak-only experiments generalize.\n";
  return 0;
}
