// Figure 2: behaviour of AVERAGE on a random 20-out overlay with the peak
// distribution (one node holds N, the rest 0; true average = 1).
//
// The paper plots, per cycle, the minimum and maximum estimate over all
// nodes, averaged over 50 experiments (N = 10^5, 30 cycles, log-y).
// Expected shape: max falls from 10^5 and min rises from 0 until both
// pinch onto 1 within ±~1% around cycle 25–30.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/20,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 2",
               "AVERAGE min/max estimate vs cycle, peak distribution, "
               "random 20-out overlay",
               bench::scale_note(s, "N=1e5, 50 reps, 30 cycles"));

  SimConfig cfg;
  cfg.nodes = s.nodes;
  cfg.cycles = 30;
  cfg.topology = TopologyConfig::random_k_out(20);

  // avg_min/avg_max: the paper's two curves (per-cycle min/max averaged
  // over experiments). lo/hi: envelope of the experiment dots. Reps fan
  // out across the runner's threads and merge back in rep order.
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  std::vector<stats::RunningStats> mins(cfg.cycles + 1), maxs(cfg.cycles + 1);
  for (const AverageRun& run : run_average_peak_reps(
           runner, cfg, failure::NoFailures{}, s.seed, 2, s.reps)) {
    for (std::size_t c = 0; c < run.per_cycle.size(); ++c) {
      mins[c].add(run.per_cycle[c].min());
      maxs[c].add(run.per_cycle[c].max());
    }
  }

  Table table({"cycle", "avg_min", "avg_max", "lo_min", "hi_max"});
  for (std::size_t c = 0; c <= cfg.cycles; ++c) {
    table.add_row({std::to_string(c), fmt_sci(mins[c].mean()),
                   fmt_sci(maxs[c].mean()), fmt_sci(mins[c].min()),
                   fmt_sci(maxs[c].max())});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig02");

  const double final_spread = maxs[cfg.cycles].max() - mins[cfg.cycles].min();
  std::cout << "\npaper-expects: min/max converge to 1 (±~1%) by cycle 30; "
               "measured final spread = "
            << fmt_sci(final_spread) << " around mean 1\n";
  return 0;
}
