// Figure 8(b): multiple concurrent COUNT instances under 20% message
// loss, as a function of the instance count t with the ⌊t/3⌋ trimmed
// combiner.
//
// Paper setup: N = 10^5, NEWSCAST(c=30), 20% of all messages dropped,
// t ∈ [1, 50], 50 experiments. Expected shape: t = 1 estimates scatter
// over roughly [0.5x, 3x] N; the trimmed multi-instance report collapses
// the spread — high accuracy from t ≈ 20 with messages of only ~20
// numeric values.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 8b",
               "COUNT min/max vs instance count t, 20% message loss",
               bench::scale_note(s, "N=1e5, loss=0.2, t in [1,50]"));

  const std::vector<std::uint32_t> ts{1, 2, 3, 5, 10, 20, 30, 50};
  // As in fig08a: report the cross-experiment envelope of the paper's
  // per-experiment min/max dots, plus the median reported estimate.
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"t", "lo", "median", "hi", "band/N"});
  for (std::uint32_t t : ts) {
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.instances = t;
    cfg.topology = TopologyConfig::newscast(30);
    cfg.comm = failure::CommFailureModel::message_loss(0.2);
    std::vector<double> mins, means, maxs;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::NoFailures{}, s.seed,
                        82 * 100 + t, s.reps)) {
      mins.push_back(run.sizes.min);
      means.push_back(run.sizes.mean);
      maxs.push_back(run.sizes.max);
    }
    const double lo = stats::summarize(mins).min;
    const double hi = stats::summarize(maxs).max;
    table.add_row({std::to_string(t), bench::fmt_size(lo),
                   bench::fmt_size(bench::median_of(means)),
                   bench::fmt_size(hi), fmt((hi - lo) / s.nodes, 4)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig08b");

  std::cout << "\npaper-expects: wide band at t=1 (roughly 0.5x-3x N), "
               "collapsing with t; tight around N from t~20\n";
  return 0;
}
