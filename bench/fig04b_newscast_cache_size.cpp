// Figure 4(b): convergence factor of AVERAGE over NEWSCAST as a function
// of the cache size c ∈ [2, 50].
//
// Expected shape: poor (≈1, barely converging) for c=2–3, improving
// steeply, and flattening near the random-overlay factor by c ≈ 20–30 —
// the paper picks c = 30 for all robustness experiments on this basis.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 4b",
               "convergence factor vs newscast cache size c",
               bench::scale_note(s, "N=1e5, 50 reps, c in [2,50]"));

  const std::vector<std::size_t> cs{2,  3,  4,  5,  6,  8, 10, 12,
                                    15, 20, 25, 30, 40, 50};
  Table table({"c", "factor_mean", "factor_min", "factor_max"});
  // The whole cache-size sweep fans out in one batch.
  ParallelRunner runner(bench::runner_threads_for(cs.size() * s.reps));
  const auto factors = runner.map_grid(
      cs.size(), s.reps, [&](std::size_t ci, std::size_t rep) {
        const std::size_t c = cs[ci];
        SimConfig cfg;
        cfg.nodes = s.nodes;
        cfg.cycles = 20;
        cfg.topology = TopologyConfig::newscast(c);
        const AverageRun run = run_average_peak(
            cfg, failure::NoFailures{}, rep_seed(s.seed, 42 * 100 + c, rep));
        return run.tracker.mean_factor(20);
      });
  for (std::size_t ci = 0; ci < cs.size(); ++ci) {
    stats::RunningStats factor;
    for (std::uint64_t rep = 0; rep < s.reps; ++rep) {
      factor.add(factors[ci * s.reps + rep]);
    }
    table.add_row({std::to_string(cs[ci]), fmt(factor.mean()),
                   fmt(factor.min()), fmt(factor.max())});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig04b");

  std::cout << "\npaper-expects: steep improvement from c=2, flat near "
            << fmt(theory::push_pull_factor()) << " by c~20-30\n";
  return 0;
}
