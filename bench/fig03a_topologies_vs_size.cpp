// Figure 3(a): average convergence factor (over 20 cycles) as a function
// of network size, one curve per topology.
//
// Paper setup: sizes 10^2..10^6; topologies W-S(β=0,.25,.5,.75),
// NEWSCAST(c=30), scale-free (BA), random, complete. Expected shape:
// every curve is FLAT in N; ordering worst→best:
// W-S(0) ≈ 0.8 > W-S(.25) > W-S(.5) > W-S(.75) > newscast ≈ scale-free
// > random ≈ complete ≈ 1/(2√e) ≈ 0.303.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/3,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 3a",
               "convergence factor vs network size for 8 topologies",
               bench::scale_note(s, "sizes 1e2..1e6, 50 reps, 20 cycles"));

  struct Topo {
    const char* name;
    TopologyConfig cfg;
  };
  const std::vector<Topo> topologies{
      {"W-S(0.00)", TopologyConfig::watts_strogatz(20, 0.00)},
      {"W-S(0.25)", TopologyConfig::watts_strogatz(20, 0.25)},
      {"W-S(0.50)", TopologyConfig::watts_strogatz(20, 0.50)},
      {"W-S(0.75)", TopologyConfig::watts_strogatz(20, 0.75)},
      {"newscast", TopologyConfig::newscast(30)},
      {"scalefree", TopologyConfig::barabasi_albert(20)},
      {"random", TopologyConfig::random_k_out(20)},
      {"complete", TopologyConfig::complete()},
  };

  std::vector<std::uint32_t> sizes{100, 1000, 10000};
  while (sizes.back() < s.nodes) sizes.push_back(sizes.back() * 10);
  if (sizes.back() > s.nodes) sizes.back() = s.nodes;

  std::vector<std::string> headers{"size"};
  for (const auto& t : topologies) headers.emplace_back(t.name);
  Table table(std::move(headers));

  // One parallel batch per size row: all topology x rep cells fan out
  // together, then fold back in (topology, rep) order.
  ParallelRunner runner(bench::runner_threads_for(topologies.size() * s.reps));
  for (const std::uint32_t n : sizes) {
    const auto factors = runner.map_grid(
        topologies.size(), s.reps, [&](std::size_t ti, std::size_t rep) {
          SimConfig cfg;
          cfg.nodes = n;
          cfg.cycles = 20;
          cfg.topology = topologies[ti].cfg;
          const AverageRun run = run_average_peak(
              cfg, failure::NoFailures{},
              rep_seed(s.seed, 31 * 1000 + ti * 100 + n % 97, rep));
          return run.tracker.mean_factor(20);
        });
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      stats::RunningStats factor;
      for (std::uint64_t rep = 0; rep < s.reps; ++rep) {
        factor.add(factors[ti * s.reps + rep]);
      }
      row.push_back(fmt(factor.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig03a");

  std::cout << "\npaper-expects: flat in N; W-S(0)~0.8 down to "
               "random/complete ~ 1/(2*sqrt(e)) = "
            << fmt(theory::push_pull_factor()) << '\n';
  return 0;
}
