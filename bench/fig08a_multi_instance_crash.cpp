// Figure 8(a): robustness through multiple concurrent COUNT instances
// under heavy churn — 1000 nodes (1% of N) replaced per cycle — as a
// function of the instance count t, with the ⌊t/3⌋ trimmed-mean combiner.
//
// Paper setup: N = 10^5, NEWSCAST(c=30), t ∈ [1, 50], 50 experiments;
// plotted are the max and min reported estimate over nodes. Expected
// shape: spread shrinks rapidly with t; by t ≈ 20 estimates are within a
// few percent of the epoch-start size.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 8a",
               "COUNT min/max vs instance count t, churn 1%/cycle",
               bench::scale_note(s, "N=1e5, 1000 subst/cycle, t in [1,50]"));

  const auto churn_rate = static_cast<std::uint32_t>(s.nodes / 100);  // 1%
  const std::vector<std::uint32_t> ts{1, 2, 3, 5, 10, 20, 30, 50};
  // The paper's dots are per-experiment min/max over nodes; the visible
  // band is their envelope across the 50 experiments. Report exactly that
  // envelope (lo/hi) plus the median reported estimate.
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"t", "lo", "median", "hi", "band/N"});
  for (std::uint32_t t : ts) {
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.instances = t;
    cfg.topology = TopologyConfig::newscast(30);
    std::vector<double> mins, means, maxs;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::Churn(churn_rate), s.seed,
                        81 * 100 + t, s.reps)) {
      mins.push_back(run.sizes.min);
      means.push_back(run.sizes.mean);
      maxs.push_back(run.sizes.max);
    }
    const double lo = stats::summarize(mins).min;
    const double hi = stats::summarize(maxs).max;
    table.add_row({std::to_string(t), bench::fmt_size(lo),
                   bench::fmt_size(bench::median_of(means)),
                   bench::fmt_size(hi), fmt((hi - lo) / s.nodes, 4)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig08a");

  std::cout << "\npaper-expects: cross-experiment band shrinking with t "
               "(paper: ~0.9x-1.3x N at t=1, tight around N by t~20-50)\n";
  return 0;
}
