// Figure 6(b): COUNT in a constant-size network under continuous churn —
// every cycle `r` nodes crash and `r` brand-new nodes join (joiners sit
// out the running epoch, acting like link failure for its members).
//
// Paper setup: N = 10^5, NEWSCAST(c=30), 30-cycle epoch, r ∈ [0, 2500]
// (up to 2.5%/cycle, i.e. ~75% of the network substituted in one epoch).
// Expected shape: the node-averaged estimate stays in a reasonable band
// around the epoch-start size, with spread growing with r.
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/10,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Figure 6b",
               "COUNT estimate vs churn rate (crash+join per cycle)",
               bench::scale_note(s, "N=1e5, r in [0,2500] (2.5%/cycle)"));

  // Sweep the same *fractions* of N as the paper: 0..2.5% per cycle.
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"churn_per_cycle", "est_median", "est_lo", "est_hi",
               "participants_left"});
  for (int fi = 0; fi <= 5; ++fi) {
    const auto rate = static_cast<std::uint32_t>(
        s.nodes * (fi * 0.005));  // 0%, .5%, 1%, 1.5%, 2%, 2.5%
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = 30;
    cfg.topology = TopologyConfig::newscast(30);
    std::vector<double> means;
    std::uint32_t participants = 0;
    for (const CountRun& run : run_count_reps(
             runner, cfg, failure::Churn(rate), s.seed, 62 * 100 + fi,
             s.reps)) {
      means.push_back(run.sizes.mean);
      participants = run.participants;
    }
    const auto sm = stats::summarize(means);
    table.add_row({std::to_string(rate), bench::fmt_size(sm.median),
                   bench::fmt_size(sm.min), bench::fmt_size(sm.max),
                   std::to_string(participants)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("fig06b");

  std::cout << "\npaper-expects: estimates centered near the epoch-start "
               "size "
            << s.nodes
            << " with spread growing with churn (paper band at 2500/cycle: "
               "~0.8x-2.6x N)\n";
  return 0;
}
