// gossip_run — the single CLI over the declarative experiment layer.
//
//   gossip_run --list
//       every registered scenario (one per pre-redesign bench binary)
//   gossip_run --scenario fig06b [--format table|csv|json]
//       reproduce a figure/ablation/baseline series (bit-identical to
//       the historical binary at the same scale)
//   gossip_run --spec experiment.json [--set key=value ...]
//       run an ad-hoc declarative ScenarioSpec
//   gossip_run --scenario fig02 --set reps=50 --set nodes=100000
//       scale overrides without touching the environment
//
// Scale resolution for --scenario: --set beats GOSSIP_N / GOSSIP_REPS /
// GOSSIP_SEED / GOSSIP_FULL, which beat the scenario's scaled defaults.
// Engine knobs (--set threads=…, shards=…, engine=…) beat the spec,
// which beats GOSSIP_THREADS / GOSSIP_SHARDS, which beat the hardware.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/json.hpp"
#include "experiment/emit.hpp"
#include "experiment/engine.hpp"
#include "experiment/registry.hpp"
#include "experiment/spec.hpp"
#include "experiment/table.hpp"

namespace {

using namespace gossip;
using namespace gossip::experiment;

int usage(std::ostream& os, int code) {
  os << "usage: gossip_run --list\n"
        "       gossip_run --scenario NAME [--set key=value ...] "
        "[--format table|csv|json]\n"
        "       gossip_run --spec FILE.json [--set key=value ...] "
        "[--format table|csv|json]\n"
        "       gossip_run --validate --spec FILE.json [--set key=value "
        "...]\n"
        "\n"
        "  --list              list registered scenarios\n"
        "  --scenario NAME     run a registered scenario (see --list)\n"
        "  --spec FILE         run a declarative ScenarioSpec JSON file\n"
        "  --validate          parse + validate the spec without running\n"
        "                      it; print the canonical JSON and exit 0\n"
        "                      (2 on any parse/validation error)\n"
        "  --set key=value     override a field; scenarios accept\n"
        "                      nodes|reps|seed|full|threads|shards|engine,\n"
        "                      spec files any top-level scalar spec field\n"
        "  --runtime           run the spec on the deployment runtime\n"
        "                      (shorthand for --set driver=runtime; spec\n"
        "                      files only)\n"
        "  --format FMT        table (default), csv, or json (with\n"
        "                      provenance block)\n"
        "\n"
        "environment: GOSSIP_N, GOSSIP_REPS, GOSSIP_SEED, GOSSIP_FULL,\n"
        "GOSSIP_THREADS, GOSSIP_SHARDS, GOSSIP_CSV_DIR (see "
        "EXPERIMENTS.md)\n";
  return code;
}

int list_scenarios() {
  Table table({"scenario", "figure", "series"});
  for (const ScenarioDef& def : ScenarioRegistry::instance().all()) {
    table.add_row({def.info.name, def.info.figure, def.info.description});
  }
  table.print(std::cout);
  std::cout << "\nrun one with: gossip_run --scenario <name>   "
               "(GOSSIP_FULL=1 for paper scale)\n";
  return 0;
}

struct SetOverride {
  std::string key;
  std::string value;
};

/// Repeating --set for one key is legal but easy to do by accident in a
/// long command line; make the last-wins resolution explicit on stderr.
void note_repeated_sets(const std::vector<SetOverride>& sets) {
  for (std::size_t i = 0; i < sets.size(); ++i) {
    bool last = true;
    bool repeated = false;
    for (std::size_t j = i + 1; j < sets.size(); ++j) {
      if (sets[j].key == sets[i].key) {
        last = false;
        break;
      }
    }
    if (!last) continue;
    for (std::size_t j = 0; j < i; ++j) {
      if (sets[j].key == sets[i].key) {
        repeated = true;
        break;
      }
    }
    if (repeated) {
      std::cerr << "gossip_run: --set " << sets[i].key
                << " given more than once; last value wins ('"
                << sets[i].value << "')\n";
    }
  }
}

int run_registered(const std::string& name,
                   const std::vector<SetOverride>& sets,
                   OutputFormat format) {
  const ScenarioDef* def = ScenarioRegistry::instance().find(name);
  if (def == nullptr) {
    std::cerr << "gossip_run: unknown scenario '" << name
              << "' (try --list)\n";
    return 2;
  }
  // `full` must resolve before nodes/reps: it selects which defaults
  // (scaled vs paper) those resolve *from*.
  std::optional<bool> full_override;
  for (const SetOverride& set : sets) {
    if (set.key != "full") continue;
    if (set.value == "1" || set.value == "true") {
      full_override = true;
    } else if (set.value == "0" || set.value == "false") {
      full_override = false;
    } else {
      throw SpecError("spec: --set full expects true/false, got '" +
                      set.value + "'");
    }
  }
  Scale scale = bench_scale(def->info.def_nodes, def->info.def_reps,
                            def->info.paper_nodes, def->info.paper_reps,
                            full_override);
  EngineOptions options;
  for (const SetOverride& set : sets) {
    if (set.key == "nodes") {
      scale.nodes = static_cast<std::uint32_t>(
          parse_u64_field(set.key, set.value));
    } else if (set.key == "reps") {
      scale.reps = static_cast<std::uint32_t>(
          parse_u64_field(set.key, set.value));
    } else if (set.key == "seed") {
      scale.seed = parse_u64_field(set.key, set.value);
    } else if (set.key == "full") {
      // already applied above
    } else if (set.key == "threads") {
      options.threads = static_cast<unsigned>(
          parse_u64_field(set.key, set.value));
    } else if (set.key == "shards") {
      options.shards = static_cast<unsigned>(
          parse_u64_field(set.key, set.value));
    } else if (set.key == "engine") {
      options.kind = engine_kind_from_string(set.value);
    } else {
      const std::string suggestion = nearest_key(
          set.key,
          {"nodes", "reps", "seed", "full", "threads", "shards", "engine"});
      throw SpecError(
          "spec: --set for a registered scenario supports "
          "nodes|reps|seed|full|threads|shards|engine, got '" +
          set.key + "'" +
          (suggestion.empty() ? ""
                              : " (did you mean '" + suggestion + "'?)"));
    }
  }
  if (format == OutputFormat::kTable) {
    print_banner(std::cout, def->info.figure, def->info.description,
                 scale_note(scale, def->info.paper_setup));
  }
  ScenarioOutput out = run_scenario(*def, scale, options);
  render_scenario(std::cout, name, out.table, out.trailer, out.results,
                  format, scale.full);
  if (format == OutputFormat::kTable) out.table.maybe_write_csv_file(name);
  return 0;
}

int run_spec_file(const std::string& path,
                  const std::vector<SetOverride>& sets,
                  OutputFormat format, bool validate_only) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "gossip_run: cannot read spec file '" << path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ScenarioSpec spec = spec_from_json(text.str());
  EngineOptions options;
  for (const SetOverride& set : sets) {
    if (set.key == "threads") {
      options.threads = static_cast<unsigned>(
          parse_u64_field(set.key, set.value));
    } else if (set.key == "shards") {
      options.shards = static_cast<unsigned>(
          parse_u64_field(set.key, set.value));
    } else {
      apply_override(spec, set.key, set.value);
    }
  }
  // Overrides are only valid/invalid as a whole — validate once here,
  // so `--set instances=4 --set aggregate=count` works in either order.
  validate(spec);
  if (validate_only) {
    // Everything parsed and validated; echo the canonical form (what
    // spec_hash hashes, indented) so CI can diff what it checked.
    std::cout << to_json(spec) << '\n';
    return 0;
  }
  Engine engine(options);
  const ScenarioResult result = engine.run(spec);
  const Table table = generic_table(result);
  if (format == OutputFormat::kTable) {
    print_banner(std::cout, spec.name,
                 spec.title.empty() ? "declarative scenario spec"
                                    : spec.title,
                 "nodes=" + std::to_string(spec.nodes) +
                     ", reps=" + std::to_string(spec.reps) +
                     ", seed=" + std::to_string(spec.seed) +
                     ", engine=" + to_string(result.engine.kind));
  }
  render_scenario(std::cout, spec.name, table, "", {result}, format,
                  /*full_scale=*/false);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string spec_path;
  std::vector<SetOverride> sets;
  OutputFormat format = OutputFormat::kTable;
  bool list = false;
  bool validate_only = false;
  bool runtime_driver = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw SpecError("spec: " + arg + " needs an argument");
        }
        return argv[++i];
      };
      if (arg == "--list") {
        list = true;
      } else if (arg == "--validate") {
        validate_only = true;
      } else if (arg == "--runtime") {
        runtime_driver = true;
      } else if (arg == "--scenario") {
        scenario = next();
      } else if (arg == "--spec") {
        spec_path = next();
      } else if (arg == "--set") {
        const std::string kv = next();
        const auto eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw SpecError("spec: --set expects key=value, got '" + kv + "'");
        }
        sets.push_back({kv.substr(0, eq), kv.substr(eq + 1)});
      } else if (arg == "--format") {
        format = parse_format(next());
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else {
        std::cerr << "gossip_run: unknown argument '" << arg << "'\n";
        return usage(std::cerr, 2);
      }
    }

    if (list) return list_scenarios();
    if (!scenario.empty() && !spec_path.empty()) {
      std::cerr << "gossip_run: --scenario and --spec are exclusive\n";
      return 2;
    }
    if (validate_only && spec_path.empty()) {
      std::cerr << "gossip_run: --validate requires --spec FILE.json\n";
      return 2;
    }
    if (runtime_driver) {
      if (spec_path.empty()) {
        std::cerr << "gossip_run: --runtime requires --spec FILE.json\n";
        return 2;
      }
      // Applied before every --set so an explicit --set driver=… (or any
      // runtime_* knob) still wins via the normal last-wins resolution.
      sets.insert(sets.begin(), {"driver", "runtime"});
    }
    note_repeated_sets(sets);
    if (!scenario.empty()) return run_registered(scenario, sets, format);
    if (!spec_path.empty()) {
      return run_spec_file(spec_path, sets, format, validate_only);
    }
    return usage(std::cerr, 2);
  } catch (const SpecError& e) {
    std::cerr << "gossip_run: " << e.what() << '\n';
    return 2;
  } catch (const EnvError& e) {
    std::cerr << "gossip_run: " << e.what() << '\n';
    return 2;
  } catch (const json::Error& e) {
    std::cerr << "gossip_run: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    // Anything else (a GOSSIP_REQUIRE tripping at runtime, bad_alloc,
    // …) previously escaped main and died in std::terminate with no
    // message; fail loudly and diagnosably instead.
    std::cerr << "gossip_run: unexpected error: " << e.what() << '\n';
    return 3;
  }
}
