// Micro-benchmarks for the event-driven engine: raw event-loop
// throughput, transport round-trips, and whole protocol-world cycles.
// Also prints the cross-engine ablation DESIGN.md calls out: the
// event-driven convergence factor vs the cycle driver's (both must sit in
// the 1/(2√e)..1/e band).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "proto/world.hpp"
#include "sim/event_loop.hpp"
#include "theory/predictions.hpp"

namespace {

using namespace gossip;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(static_cast<sim::SimTime>(i % 97), [&sink] { ++sink; });
    }
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_EventLoopTimerCancel(benchmark::State& state) {
  // The protocol's hot pattern: arm a timeout, cancel it on reply.
  sim::EventLoop loop;
  for (auto _ : state) {
    const auto id = loop.schedule_after(1000, [] {});
    benchmark::DoNotOptimize(loop.cancel(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLoopTimerCancel);

void BM_ProtoWorldCycle(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  proto::WorldConfig cfg;
  cfg.nodes = n;
  cfg.seed = 42;
  proto::World world(cfg);
  world.start();
  for (auto _ : state) {
    world.run_cycles(1);
    benchmark::DoNotOptimize(world.loop().executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProtoWorldCycle)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Ablation note (not a timing benchmark): cross-engine agreement of the
  // convergence factor.
  {
    using namespace gossip;
    auto spec = experiment::ScenarioSpec::average_peak("micro", 2000, 15)
                    .with_topology(experiment::TopologyConfig::newscast(20))
                    .with_engine(experiment::EngineKind::kSerial);
    experiment::Engine engine;
    const auto cycle_run = engine.run_single(spec, 7);
    const double cycle_factor = cycle_run.tracker.mean_factor(12);

    proto::WorldConfig wcfg;
    wcfg.nodes = 2000;
    wcfg.seed = 7;
    wcfg.protocol.cache_size = 20;
    proto::World world(wcfg);
    world.start();
    world.run_cycles(2);
    const double va = world.estimate_summary().variance;
    world.run_cycles(10);
    const double vb = world.estimate_summary().variance;
    const double event_factor = std::pow(vb / va, 0.1);

    std::printf(
        "engines-agree ablation: cycle-driver factor=%.4f  event-driven "
        "factor=%.4f  (theory band %.4f..%.4f)\n\n",
        cycle_factor, event_factor, theory::push_pull_factor(),
        theory::uniform_pairing_factor());
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
