// Shared helpers for the figure-reproduction binaries. Each binary
// regenerates one figure of the paper: same workload, same sweep, same
// reported series — at a scaled-down default size (GOSSIP_FULL=1 restores
// paper scale; see EXPERIMENTS.md for the mapping).
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/scale.hpp"
#include "experiment/table.hpp"
#include "experiment/workloads.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"
#include "theory/predictions.hpp"

namespace gossip::bench {

/// Worker-thread count for a bench whose largest parallel batch holds
/// `max_jobs` jobs: the GOSSIP_THREADS / hardware resolution, capped so
/// the scaled-down default runs don't spawn workers that would never
/// receive a job. Never changes results — only idle-thread overhead.
inline unsigned runner_threads_for(std::uint64_t max_jobs) {
  return static_cast<unsigned>(std::min<std::uint64_t>(
      experiment::runner_threads(), std::max<std::uint64_t>(max_jobs, 1)));
}

/// Scale note string for the banner. `threads<=` is the worker *budget*
/// (GOSSIP_THREADS / hardware default) — each parallel batch additionally
/// caps its pool at the batch's job count (runner_threads_for), and
/// results are bit-identical either way.
inline std::string scale_note(const experiment::Scale& s,
                              const std::string& paper_setup) {
  std::ostringstream os;
  os << "N=" << s.nodes << ", reps=" << s.reps << ", seed=" << s.seed
     << ", threads<=" << experiment::runner_threads()
     << (s.full ? " [paper scale]" : " [scaled default]")
     << " | paper: " << paper_setup;
  return os.str();
}

/// "inf"-safe formatting for size estimates that diverged.
inline std::string fmt_size(double v) {
  if (!std::isfinite(v)) return "inf";
  return experiment::fmt(v, 1);
}

/// Median of a (copied) sample; 0 for empty.
inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  return stats::summarize(v).median;
}

}  // namespace gossip::bench
