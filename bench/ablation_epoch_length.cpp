// Ablation: epoch length γ (§4.5).
//
// The paper chooses γ from the target accuracy ε and the convergence
// factor ρ: γ >= log_ρ ε. This harness sweeps γ and reports the COUNT
// accuracy actually achieved at each epoch length, next to ρ^γ — showing
// both the rule and its sharpness (too-short epochs report garbage,
// anything past ~log_ρ ε is wasted cycles).
#include "bench_common.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::experiment;

  const Scale s = bench_scale(/*def_nodes=*/10000, /*def_reps=*/5,
                              /*paper_nodes=*/100000, /*paper_reps=*/50);
  print_banner(std::cout, "Ablation",
               "COUNT accuracy vs epoch length gamma (rule: gamma >= "
               "log_rho epsilon)",
               bench::scale_note(s, "not a paper figure; design ablation"));

  const double rho = theory::push_pull_factor();
  ParallelRunner runner(bench::runner_threads_for(s.reps));
  Table table({"gamma", "rho^gamma", "worst_node_err%", "mean_err%"});
  for (std::uint32_t gamma : {4u, 8u, 12u, 16u, 20u, 24u, 30u, 40u}) {
    SimConfig cfg;
    cfg.nodes = s.nodes;
    cfg.cycles = gamma;
    cfg.topology = TopologyConfig::newscast(30);
    double worst = 0.0;
    stats::RunningStats mean_err;
    int divergent = 0;
    for (const CountRun& run :
         run_count_reps(runner, cfg, failure::NoFailures{}, s.seed,
                        95 + gamma, s.reps)) {
      const double n = static_cast<double>(s.nodes);
      if (std::isfinite(run.sizes.max)) {
        worst = std::max(worst, std::abs(run.sizes.max - n) / n);
      } else {
        ++divergent;  // some node saw no instance at all: estimate = inf
      }
      worst = std::max(worst, std::abs(run.sizes.min - n) / n);
      if (std::isfinite(run.sizes.mean)) {
        mean_err.add(std::abs(run.sizes.mean - n) / n);
      }
    }
    table.add_row({std::to_string(gamma),
                   fmt_sci(std::pow(rho, gamma), 2),
                   divergent > 0 ? "inf" : fmt(100.0 * worst, 3),
                   mean_err.count() == 0
                       ? "inf"
                       : fmt(100.0 * mean_err.mean(), 4)});
  }
  table.print(std::cout);
  table.maybe_write_csv_file("ablation_epoch_length");
  std::cout << "\nexpected: worst-node error tracks rho^gamma; the paper's "
               "gamma=30 is comfortably past convergence (ratio ~"
            << fmt_sci(std::pow(rho, 30), 1) << ")\n";
  return 0;
}
